"""Context-related transducers.

The user-context weighting step is itself a component of the architecture:
when preference facts appear in the knowledge base, the weight-derivation
transducer becomes runnable and asserts ``criterion_weight`` facts that the
selection transducers consume.
"""

from __future__ import annotations

from repro.context.user_context import UserContext
from repro.core.facts import Predicates, criterion_weight_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult

__all__ = ["CriterionWeightTransducer"]


class CriterionWeightTransducer(Transducer):
    """Derives AHP criterion weights from pairwise preference facts.

    Input dependency (Table 1 style): user preferences must be present.
    Output: ``criterion_weight(criterion, weight)`` facts.
    """

    name = "criterion_weighting"
    activity = Activity.SELECTION
    priority = 10
    input_dependencies = ("preference(A, B, S)",)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        context = UserContext.from_kb(kb)
        weights = context.weights()
        kb.retract_where(Predicates.CRITERION_WEIGHT)
        added = 0
        for criterion, weight in weights.items():
            added += int(kb.assert_tuple(criterion_weight_fact(criterion.key, weight)))
        consistency = context.consistency_ratio()
        return TransducerResult(
            facts_added=added,
            notes=f"derived {len(weights)} criterion weights (CR={consistency:.3f})",
            details={
                "weights": {c.key: w for c, w in weights.items()},
                "consistency_ratio": consistency,
            },
        )
