"""User context: pairwise preferences over quality criteria.

Figure 2(d) of the paper shows the user context as statements such as::

    completeness crimerank   very strongly more important than   accuracy property.type
    consistency property     strongly more important than        completeness property.bedrooms
    completeness property.street  moderately more important than completeness property.postcode

A :class:`UserContext` collects such statements, derives criterion weights
via AHP (:mod:`repro.context.ahp`) and asserts both the raw preferences and
the derived weights into the knowledge base, where the mapping/source
selection transducers consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.context.ahp import PairwiseMatrix, verbal_strength
from repro.context.criteria import Criterion
from repro.core.facts import Predicates, criterion_weight_fact, preference_fact
from repro.core.knowledge_base import KnowledgeBase

__all__ = ["Preference", "UserContext"]


@dataclass(frozen=True)
class Preference:
    """One pairwise comparison: ``more_important`` beats ``less_important``."""

    more_important: Criterion
    less_important: Criterion
    strength: float

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise ValueError(f"preference strength must be positive, got {self.strength}")

    @classmethod
    def from_phrase(cls, more_important: Criterion, phrase: str,
                    less_important: Criterion) -> "Preference":
        """Build a preference from a verbal phrase (paper's wording)."""
        return cls(more_important, less_important, verbal_strength(phrase))

    def __str__(self) -> str:
        return (f"{self.more_important} (x{self.strength:g}) more important than "
                f"{self.less_important}")


class UserContext:
    """The set of user preferences for one wrangling task."""

    def __init__(
        self, preferences: Iterable[Preference] = (), default_criteria: Iterable[Criterion] = ()
    ):
        self._preferences: list[Preference] = list(preferences)
        self._default_criteria: list[Criterion] = list(default_criteria)

    # -- construction ----------------------------------------------------------

    def prefer(
        self, more_important: Criterion, less_important: Criterion, strength: float | str
    ) -> "UserContext":
        """Add a pairwise preference (numeric strength or verbal phrase)."""
        if isinstance(strength, str):
            numeric = verbal_strength(strength)
        else:
            numeric = float(strength)
        self._preferences.append(Preference(more_important, less_important, numeric))
        return self

    def add(self, preference: Preference) -> "UserContext":
        """Add a ready-built preference."""
        self._preferences.append(preference)
        return self

    @property
    def preferences(self) -> tuple[Preference, ...]:
        """All pairwise statements."""
        return tuple(self._preferences)

    def __len__(self) -> int:
        return len(self._preferences)

    def __bool__(self) -> bool:
        return bool(self._preferences) or bool(self._default_criteria)

    # -- weight derivation -------------------------------------------------------

    def criteria(self) -> list[Criterion]:
        """All criteria mentioned by the preferences (plus declared defaults)."""
        seen: dict[str, Criterion] = {}
        for criterion in self._default_criteria:
            seen.setdefault(criterion.key, criterion)
        for preference in self._preferences:
            seen.setdefault(preference.more_important.key, preference.more_important)
            seen.setdefault(preference.less_important.key, preference.less_important)
        return [seen[key] for key in sorted(seen)]

    def pairwise_matrix(self) -> PairwiseMatrix:
        """The AHP comparison matrix implied by the preferences."""
        criteria = self.criteria()
        comparisons: dict[tuple[str, str], float] = {}
        for preference in self._preferences:
            comparisons[(preference.more_important.key, preference.less_important.key)] = (
                preference.strength)
        return PairwiseMatrix.from_comparisons([c.key for c in criteria], comparisons)

    def weights(self) -> dict[Criterion, float]:
        """AHP weights per criterion (empty context → empty dict)."""
        criteria = self.criteria()
        if not criteria:
            return {}
        vector = self.pairwise_matrix().weight_vector()
        return {criterion: vector[criterion.key] for criterion in criteria}

    def dimension_weights(self) -> dict[str, float]:
        """Weights aggregated to the four quality dimensions.

        Attribute-scoped criteria contribute their weight to their dimension;
        the result is normalised to sum to 1 and is what mapping/source
        selection uses when scoring whole candidate mappings.
        """
        aggregated: dict[str, float] = {}
        for criterion, weight in self.weights().items():
            aggregated[criterion.dimension] = aggregated.get(criterion.dimension, 0.0) + weight
        total = sum(aggregated.values())
        if total <= 0:
            return {}
        return {dimension: weight / total for dimension, weight in aggregated.items()}

    def attribute_weights(self, dimension: str) -> dict[str, float]:
        """Relative weights of attribute-scoped criteria within one dimension."""
        scoped = {
            criterion.attribute: weight
            for criterion, weight in self.weights().items()
            if criterion.dimension == dimension and criterion.attribute
        }
        total = sum(scoped.values())
        if total <= 0:
            return {}
        return {attribute: weight / total for attribute, weight in scoped.items()}

    def consistency_ratio(self) -> float:
        """AHP consistency ratio of the preference set."""
        if not self._preferences:
            return 0.0
        return self.pairwise_matrix().consistency_ratio()

    # -- knowledge base interaction ---------------------------------------------------

    def assert_into(self, kb: KnowledgeBase) -> int:
        """Write preferences and derived weights into the knowledge base.

        Existing preference/weight facts are replaced (changing the user
        context is exactly what re-triggers selection transducers).
        """
        kb.retract_where(Predicates.PREFERENCE)
        kb.retract_where(Predicates.CRITERION_WEIGHT)
        added = 0
        for preference in self._preferences:
            added += int(kb.assert_tuple(preference_fact(
                preference.more_important.key, preference.less_important.key,
                preference.strength)))
        for criterion, weight in self.weights().items():
            added += int(kb.assert_tuple(criterion_weight_fact(criterion.key, weight)))
        kb.assert_fact(Predicates.USER_CONTEXT_SET)
        return added

    @classmethod
    def from_kb(cls, kb: KnowledgeBase) -> "UserContext":
        """Reconstruct a user context from the KB's preference facts."""
        context = cls()
        for first, second, strength in kb.facts(Predicates.PREFERENCE):
            context.add(
                Preference(Criterion.from_key(first), Criterion.from_key(second), float(strength))
            )
        return context

    # -- rendering ---------------------------------------------------------------------

    def describe(self) -> list[str]:
        """Human-readable statements (mirrors Figure 2(d))."""
        return [str(preference) for preference in self._preferences]

    def __repr__(self) -> str:
        return f"UserContext(preferences={len(self._preferences)})"
