"""User context (pairwise preferences → AHP weights) and data context."""

from repro.context.ahp import (
    RANDOM_INDEX,
    VERBAL_SCALE,
    PairwiseMatrix,
    consistency_ratio,
    derive_weights,
    verbal_strength,
)
from repro.context.criteria import ACCURACY, COMPLETENESS, CONSISTENCY, RELEVANCE, Criterion
from repro.context.data_context import DataContext, DataContextBinding
from repro.context.transducers import CriterionWeightTransducer
from repro.context.user_context import Preference, UserContext

__all__ = [
    "Criterion",
    "COMPLETENESS",
    "ACCURACY",
    "CONSISTENCY",
    "RELEVANCE",
    "Preference",
    "UserContext",
    "DataContext",
    "DataContextBinding",
    "CriterionWeightTransducer",
    "PairwiseMatrix",
    "derive_weights",
    "consistency_ratio",
    "verbal_strength",
    "VERBAL_SCALE",
    "RANDOM_INDEX",
]
