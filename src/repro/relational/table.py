"""In-memory relational tables.

A :class:`Table` couples a :class:`~repro.relational.schema.Schema` with an
ordered list of rows. Rows are plain tuples aligned with the schema order;
:class:`Row` is a light mapping view used when callers want name-based access.

Tables are *logically immutable*: the wrangling components never mutate a
table in place, they derive new tables (this is what makes the orchestration
trace reproducible). Builder-style helpers (:meth:`Table.append_row`) return
new tables as well.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.relational.errors import ArityError, SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import coerce_value, infer_common_type, infer_type, is_null

__all__ = ["ROW_KEY_ATTRIBUTE", "Row", "Table"]

#: Name of the bookkeeping column carrying a stable per-row identity
#: (``source:index``). Mapping execution adds it to every materialised
#: result; provenance, fusion and feedback all key row-level state on it so
#: their annotations survive derivations that reorder or drop rows.
ROW_KEY_ATTRIBUTE = "_row_id"


class Row(Mapping[str, Any]):
    """A read-only, name-addressable view over one tuple of a table."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: tuple[Any, ...]):
        if len(values) != schema.arity:
            raise ArityError(
                f"row has {len(values)} values but schema {schema.name!r} has arity {schema.arity}")
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> Schema:
        """Schema the row conforms to."""
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """The underlying value tuple (schema order)."""
        return self._values

    def __getitem__(self, name: str) -> Any:
        return self._values[self._schema.position(name)]

    def __contains__(self, name: object) -> bool:
        return name in self._schema

    def get(self, name: str, default: Any = None) -> Any:
        if name not in self._schema:
            return default
        return self[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.attribute_names)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values and self._schema == other._schema
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def to_dict(self) -> dict[str, Any]:
        """Materialise the row as a plain dict."""
        return dict(zip(self._schema.attribute_names, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"Row({pairs})"


class Table:
    """A named relation: a schema plus an ordered collection of tuples."""

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = (), *,
                 coerce: bool = True, validate: bool = True):
        self._schema = schema
        materialised: list[tuple[Any, ...]] = []
        for raw in rows:
            values = tuple(raw)
            if validate and len(values) != schema.arity:
                raise ArityError(
                    f"row {values!r} has {len(values)} values but schema "
                    f"{schema.name!r} has arity {schema.arity}")
            if coerce:
                values = tuple(
                    coerce_value(v, a.dtype) for v, a in zip(values, schema.attributes))
            materialised.append(values)
        self._rows = materialised

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[Mapping[str, Any]], *,
                   strict: bool = False) -> "Table":
        """Build a table from dict records; missing attributes become NULL.

        When ``strict`` is true a record containing unknown attributes raises
        :class:`UnknownAttributeError`.
        """
        names = schema.attribute_names
        known = set(names)
        rows = []
        for record in records:
            if strict:
                for key in record:
                    if key not in known:
                        raise UnknownAttributeError(key, names)
            rows.append(tuple(record.get(name) for name in names))
        return cls(schema, rows)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls(schema, ())

    @classmethod
    def infer(cls, name: str, records: Sequence[Mapping[str, Any]]) -> "Table":
        """Build a table from records, inferring the schema from the data."""
        if not records:
            raise SchemaError("cannot infer a schema from zero records")
        names: list[str] = []
        for record in records:
            for key in record:
                if key not in names:
                    names.append(key)
        attributes = []
        for attr_name in names:
            observed = [infer_type(r.get(attr_name)) for r in records]
            attributes.append(Attribute(attr_name, infer_common_type(observed)))
        schema = Schema(name, attributes)
        return cls.from_dicts(schema, records)

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name (from the schema)."""
        return self._schema.name

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return True

    def __iter__(self) -> Iterator[Row]:
        schema = self._schema
        return (Row(schema, values) for values in self._rows)

    def __getitem__(self, index: int) -> Row:
        return Row(self._schema, self._rows[index])

    def rows(self) -> list[Row]:
        """All rows as :class:`Row` views."""
        return [Row(self._schema, values) for values in self._rows]

    def tuples(self) -> list[tuple[Any, ...]]:
        """All rows as raw value tuples (schema order)."""
        return list(self._rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """All rows as plain dictionaries."""
        names = self._schema.attribute_names
        return [dict(zip(names, values)) for values in self._rows]

    def column(self, name: str) -> list[Any]:
        """All values of the attribute ``name``, in row order."""
        position = self._schema.position(name)
        return [values[position] for values in self._rows]

    def distinct_values(self, name: str, *, drop_null: bool = True) -> set[Any]:
        """The set of distinct values of attribute ``name``."""
        values = self.column(name)
        if drop_null:
            return {v for v in values if not is_null(v)}
        return set(values)

    def null_count(self, name: str) -> int:
        """Number of NULL values in attribute ``name``."""
        return sum(1 for v in self.column(name) if is_null(v))

    # -- row identity ---------------------------------------------------------

    def has_row_keys(self) -> bool:
        """Whether the table carries the stable row-identity column."""
        return ROW_KEY_ATTRIBUTE in self._schema

    def row_key(self, index: int) -> str:
        """Stable identity of one row.

        The value of the :data:`ROW_KEY_ATTRIBUTE` bookkeeping column when
        the table carries it (materialised results do), else the positional
        index rendered as a string (only stable while rows are not
        reordered or removed).
        """
        if ROW_KEY_ATTRIBUTE in self._schema:
            position = self._schema.position(ROW_KEY_ATTRIBUTE)
            value = self._rows[index][position]
            if value is not None:
                return str(value)
        if index < 0:
            index += len(self._rows)
        return str(index)

    def row_keys(self) -> list[str]:
        """Stable identities of all rows, in row order (see :meth:`row_key`)."""
        if ROW_KEY_ATTRIBUTE in self._schema:
            position = self._schema.position(ROW_KEY_ATTRIBUTE)
            return [str(values[position]) if values[position] is not None else str(index)
                    for index, values in enumerate(self._rows)]
        return [str(index) for index in range(len(self._rows))]

    # -- derivation helpers ---------------------------------------------------

    def append_row(self, values: Sequence[Any] | Mapping[str, Any]) -> "Table":
        """Return a new table with one extra row."""
        if isinstance(values, Mapping):
            values = tuple(values.get(n) for n in self._schema.attribute_names)
        table = Table(self._schema, (), coerce=False, validate=False)
        table._rows = list(self._rows)
        coerced = tuple(
            coerce_value(v, a.dtype) for v, a in zip(tuple(values), self._schema.attributes))
        if len(coerced) != self._schema.arity:
            raise ArityError(
                f"row {values!r} has {len(coerced)} values but schema has arity "
                f"{self._schema.arity}")
        table._rows.append(coerced)
        return table

    def extend(self, rows: Iterable[Sequence[Any]]) -> "Table":
        """Return a new table with the extra ``rows`` appended."""
        table = Table(self._schema, rows)
        merged = Table(self._schema, (), coerce=False, validate=False)
        merged._rows = list(self._rows) + list(table._rows)
        return merged

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> "Table":
        """Return a table with the same schema but entirely new rows."""
        return Table(self._schema, rows)

    def rename(self, name: str) -> "Table":
        """Return the same table under a different relation name."""
        renamed = Table(self._schema.rename(name), (), coerce=False, validate=False)
        renamed._rows = list(self._rows)
        return renamed

    def map_column(self, name: str, func: Callable[[Any], Any]) -> "Table":
        """Return a table with ``func`` applied to every value of ``name``."""
        position = self._schema.position(name)
        new_rows = []
        for values in self._rows:
            mutable = list(values)
            mutable[position] = func(mutable[position])
            new_rows.append(tuple(mutable))
        return Table(self._schema, new_rows)

    def head(self, count: int) -> "Table":
        """Return the first ``count`` rows."""
        sliced = Table(self._schema, (), coerce=False, validate=False)
        sliced._rows = list(self._rows[:count])
        return sliced

    # -- equality / display -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self._schema, tuple(self._rows)))

    def __repr__(self) -> str:
        return f"Table({self._schema.name!r}, rows={len(self._rows)})"

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width text rendering of up to ``limit`` rows."""
        names = list(self._schema.attribute_names)
        sample = self._rows[:limit]
        rendered = [[("" if is_null(v) else str(v)) for v in row] for row in sample]
        widths = [len(n) for n in names]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        divider = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rendered]
        footer = []
        if len(self._rows) > limit:
            footer.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join([header, divider, *body, *footer])
