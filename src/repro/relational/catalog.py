"""A named-table catalog: the extensional data store behind the knowledge base.

The knowledge base (``repro.core.knowledge_base``) stores *metadata* facts;
actual data sets are registered here under stable names, mirroring the
paper's statement that extensional data "is actually stored in external file
systems or databases". The catalog supports an optional on-disk CSV
directory so a wrangling session can be persisted and re-opened.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.relational.csvio import read_csv, write_csv
from repro.relational.errors import TableAlreadyExistsError, TableNotFoundError
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["Catalog"]


class Catalog:
    """Registry of named tables with optional CSV persistence.

    Parameters
    ----------
    directory:
        When given, :meth:`flush` writes each registered table to
        ``<directory>/<name>.csv`` and :meth:`load_directory` re-reads them.
    """

    def __init__(self, directory: str | Path | None = None):
        self._tables: dict[str, Table] = {}
        self._directory = Path(directory) if directory is not None else None

    # -- registration ------------------------------------------------------

    def register(self, table: Table, *, name: str | None = None,
                 replace: bool = False) -> str:
        """Register ``table`` under ``name`` (defaults to the table's name).

        Returns the registration name. Raises
        :class:`TableAlreadyExistsError` unless ``replace`` is true.
        """
        key = name or table.name
        if key in self._tables and not replace:
            raise TableAlreadyExistsError(key)
        self._tables[key] = table if name is None or name == table.name else table.rename(key)
        return key

    def replace(self, table: Table, *, name: str | None = None) -> str:
        """Register or overwrite a table."""
        return self.register(table, name=name, replace=True)

    def deregister(self, name: str) -> Table:
        """Remove a table from the catalog and return it."""
        try:
            return self._tables.pop(name)
        except KeyError:
            raise TableNotFoundError(name) from None

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def get_schema(self, name: str) -> Schema:
        """Return the schema of the table registered under ``name``."""
        return self.get(name).schema

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def names(self) -> list[str]:
        """Sorted list of registered table names."""
        return sorted(self._tables)

    def tables(self) -> list[Table]:
        """All registered tables, ordered by name."""
        return [self._tables[name] for name in self.names()]

    def total_rows(self) -> int:
        """Total number of rows across all registered tables."""
        return sum(len(table) for table in self._tables.values())

    # -- persistence ---------------------------------------------------------

    def flush(self) -> list[Path]:
        """Write every registered table to the catalog directory as CSV."""
        if self._directory is None:
            raise TableNotFoundError("catalog has no backing directory")
        self._directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name in self.names():
            target = self._directory / f"{name}.csv"
            write_csv(self._tables[name], target)
            written.append(target)
        return written

    def load_directory(self) -> list[str]:
        """Load every ``*.csv`` file in the backing directory."""
        if self._directory is None:
            raise TableNotFoundError("catalog has no backing directory")
        loaded = []
        for path in sorted(self._directory.glob("*.csv")):
            table = read_csv(path)
            self.replace(table)
            loaded.append(table.name)
        return loaded

    def __repr__(self) -> str:
        return f"Catalog(tables={len(self._tables)})"
