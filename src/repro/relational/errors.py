"""Exceptions raised by the relational substrate.

The relational layer is the storage substrate of the reproduction: the
knowledge base stores metadata facts, while extensional data (source tables,
reference data, wrangling results) lives in relational tables managed by a
:class:`~repro.relational.catalog.Catalog`.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A schema is malformed or an operation violates a schema."""


class TypeCoercionError(RelationalError):
    """A value cannot be coerced to the declared attribute type."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not define."""

    def __init__(self, attribute: str, known: tuple[str, ...] = ()):
        self.attribute = attribute
        self.known = tuple(known)
        known_part = f" (known attributes: {', '.join(known)})" if known else ""
        super().__init__(f"unknown attribute {attribute!r}{known_part}")


class DuplicateAttributeError(SchemaError):
    """A schema declares the same attribute name twice."""


class ArityError(RelationalError):
    """A row has a different number of values than its schema."""


class CatalogError(RelationalError):
    """Base class for catalog-level failures."""


class TableNotFoundError(CatalogError):
    """A named table is not registered in the catalog."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"table {name!r} is not registered in the catalog")


class TableAlreadyExistsError(CatalogError):
    """A table is registered under a name that is already in use."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"table {name!r} is already registered in the catalog")


class CsvFormatError(RelationalError):
    """A CSV file cannot be parsed into a table."""
