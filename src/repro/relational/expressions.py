"""Row-level expressions used by the relational operators.

Expressions form a tiny combinator library: attribute references, literals,
comparisons, boolean connectives and arithmetic. They are used by
:mod:`repro.relational.operators` (selection predicates, computed columns)
and by :mod:`repro.mapping` when mappings filter or transform source data.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.relational.errors import RelationalError
from repro.relational.types import is_null

__all__ = [
    "Expression",
    "Column",
    "Literal",
    "Comparison",
    "BooleanExpr",
    "Not",
    "Arithmetic",
    "FunctionCall",
    "IsNull",
    "col",
    "lit",
]


class ExpressionError(RelationalError):
    """An expression is malformed or cannot be evaluated against a row."""


class Expression:
    """Base class for all row expressions."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate this expression against one row (a name→value mapping)."""
        raise NotImplementedError

    # -- comparison builders (return predicates) ----------------------------

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), "==")

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _wrap(other), "!=")

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), "<")

    def __le__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), "<=")

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), ">")

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(self, _wrap(other), ">=")

    __hash__ = None  # type: ignore[assignment]

    # -- boolean builders ----------------------------------------------------

    def __and__(self, other: "Expression") -> "BooleanExpr":
        return BooleanExpr(self, _wrap(other), "and")

    def __or__(self, other: "Expression") -> "BooleanExpr":
        return BooleanExpr(self, _wrap(other), "or")

    def __invert__(self) -> "Not":
        return Not(self)

    # -- arithmetic builders ---------------------------------------------------

    def __add__(self, other: Any) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), "+")

    def __sub__(self, other: Any) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), "-")

    def __mul__(self, other: Any) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), "*")

    def __truediv__(self, other: Any) -> "Arithmetic":
        return Arithmetic(self, _wrap(other), "/")

    def is_null(self) -> "IsNull":
        """Predicate that is true when this expression evaluates to NULL."""
        return IsNull(self, negate=False)

    def is_not_null(self) -> "IsNull":
        """Predicate that is true when this expression is not NULL."""
        return IsNull(self, negate=True)


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class Column(Expression):
    """Reference to an attribute of the row being evaluated."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.name not in row:
            raise ExpressionError(f"row has no attribute {self.name!r}")
        return row[self.name]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(eq=False)
class Comparison(Expression):
    """A binary comparison with SQL-style NULL semantics.

    Any comparison involving NULL evaluates to False (three-valued logic
    collapsed to two values, which is what selection needs).
    """

    left: Expression
    right: Expression
    op: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if is_null(left) or is_null(right):
            return False
        try:
            return bool(_COMPARATORS[self.op](left, right))
        except TypeError:
            # Incomparable types (e.g. str vs int) are treated as not matching
            # rather than aborting a whole wrangling run.
            return False

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class BooleanExpr(Expression):
    """Conjunction or disjunction of two predicates."""

    left: Expression
    right: Expression
    op: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        left = bool(self.left.evaluate(row))
        if self.op == "and":
            return left and bool(self.right.evaluate(row))
        if self.op == "or":
            return left or bool(self.right.evaluate(row))
        raise ExpressionError(f"unknown boolean operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class Not(Expression):
    """Logical negation of a predicate."""

    operand: Expression

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not bool(self.operand.evaluate(row))

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


@dataclass(eq=False)
class IsNull(Expression):
    """NULL test; ``negate=True`` yields IS NOT NULL."""

    operand: Expression
    negate: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        result = is_null(self.operand.evaluate(row))
        return (not result) if self.negate else result

    def __repr__(self) -> str:
        suffix = "is_not_null" if self.negate else "is_null"
        return f"({self.operand!r}).{suffix}()"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic; NULL operands propagate to a NULL result."""

    left: Expression
    right: Expression
    op: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if is_null(left) or is_null(right):
            return None
        if self.op == "/" and right == 0:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except KeyError:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}") from None
        except TypeError as exc:
            raise ExpressionError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}") from exc

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class FunctionCall(Expression):
    """Apply an arbitrary Python callable to evaluated argument expressions."""

    func: Callable[..., Any]
    args: tuple[Expression, ...]
    name: str = ""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        values = [arg.evaluate(row) for arg in self.args]
        return self.func(*values)

    def __repr__(self) -> str:
        label = self.name or getattr(self.func, "__name__", "fn")
        return f"{label}({', '.join(repr(a) for a in self.args)})"


def col(name: str) -> Column:
    """Shorthand constructor for a :class:`Column` reference."""
    return Column(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a :class:`Literal`."""
    return Literal(value)
