"""Relational substrate: schemas, tables, operators, CSV I/O and a catalog.

This package is the storage layer of the reproduction. It plays the role of
the "external file systems or databases" that hold extensional data in the
VADA architecture, while the knowledge base holds metadata about them.
"""

from repro.relational.catalog import Catalog
from repro.relational.csvio import read_csv, read_csv_text, write_csv, write_csv_text
from repro.relational.errors import (
    ArityError,
    CatalogError,
    CsvFormatError,
    DuplicateAttributeError,
    RelationalError,
    SchemaError,
    TableAlreadyExistsError,
    TableNotFoundError,
    TypeCoercionError,
    UnknownAttributeError,
)
from repro.relational.expressions import col, lit
from repro.relational.keys import normalise_key, normalise_key_tuple
from repro.relational.operators import (
    Aggregation,
    aggregate,
    difference,
    distinct,
    extend,
    group_by,
    join,
    left_outer_join,
    limit,
    natural_join,
    project,
    rename_attributes,
    select,
    sort,
    union,
    union_all,
)
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Row, Table
from repro.relational.types import NULL, DataType, coerce_value, infer_type, is_null

__all__ = [
    "Attribute",
    "Schema",
    "Row",
    "Table",
    "Catalog",
    "DataType",
    "NULL",
    "is_null",
    "coerce_value",
    "infer_type",
    "col",
    "lit",
    "normalise_key",
    "normalise_key_tuple",
    "select",
    "project",
    "rename_attributes",
    "extend",
    "natural_join",
    "join",
    "left_outer_join",
    "union",
    "union_all",
    "difference",
    "distinct",
    "sort",
    "limit",
    "aggregate",
    "group_by",
    "Aggregation",
    "read_csv",
    "write_csv",
    "read_csv_text",
    "write_csv_text",
    "RelationalError",
    "SchemaError",
    "TypeCoercionError",
    "UnknownAttributeError",
    "DuplicateAttributeError",
    "ArityError",
    "CatalogError",
    "TableNotFoundError",
    "TableAlreadyExistsError",
    "CsvFormatError",
]
