"""Relational algebra operators over :class:`~repro.relational.table.Table`.

These are the physical operators used by mapping execution
(:mod:`repro.mapping.execution`), fusion and the baseline ETL pipeline. Each
operator is a pure function from tables to a new table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.relational.errors import SchemaError, UnknownAttributeError
from repro.relational.expressions import Expression
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Row, Table
from repro.relational.types import DataType, is_null

__all__ = [
    "select",
    "project",
    "rename_attributes",
    "extend",
    "natural_join",
    "join",
    "left_outer_join",
    "union",
    "union_all",
    "difference",
    "distinct",
    "sort",
    "limit",
    "aggregate",
    "group_by",
    "Aggregation",
    "AGGREGATE_FUNCTIONS",
]


def select(table: Table, predicate: Expression | Callable[[Row], bool]) -> Table:
    """Return the rows of ``table`` satisfying ``predicate``."""
    if isinstance(predicate, Expression):
        keep = [values for values, row in _rows_with_views(table) if predicate.evaluate(row)]
    else:
        keep = [values for values, row in _rows_with_views(table) if predicate(row)]
    return table.replace_rows(keep)


def project(table: Table, names: Sequence[str], *, relation_name: str | None = None) -> Table:
    """Return only the attributes ``names`` (in the given order)."""
    schema = table.schema.project(names, relation_name)
    positions = [table.schema.position(n) for n in names]
    rows = [tuple(values[p] for p in positions) for values in table.tuples()]
    return Table(schema, rows, coerce=False)


def rename_attributes(table: Table, mapping: Mapping[str, str]) -> Table:
    """Rename attributes per ``mapping`` (old name → new name)."""
    schema = table.schema.rename_attributes(mapping)
    return Table(schema, table.tuples(), coerce=False)


def extend(table: Table, name: str, expression: Expression | Callable[[Row], Any], *,
           dtype: DataType = DataType.ANY) -> Table:
    """Add a computed attribute ``name`` to every row."""
    if name in table.schema:
        raise SchemaError(f"attribute {name!r} already exists in {table.name!r}")
    schema = table.schema.add(Attribute(name, dtype))
    rows = []
    for values, row in _rows_with_views(table):
        if isinstance(expression, Expression):
            computed = expression.evaluate(row)
        else:
            computed = expression(row)
        rows.append((*values, computed))
    return Table(schema, rows)


def _rows_with_views(table: Table) -> Iterable[tuple[tuple[Any, ...], Row]]:
    schema = table.schema
    for values in table.tuples():
        yield values, Row(schema, values)


# -- joins ---------------------------------------------------------------------


def natural_join(left: Table, right: Table, *, relation_name: str | None = None) -> Table:
    """Join on all attributes the two schemas share by name."""
    shared = [n for n in left.schema.attribute_names if n in right.schema]
    if not shared:
        raise SchemaError(
            f"natural join of {left.name!r} and {right.name!r} has no shared attributes")
    pairs = [(n, n) for n in shared]
    return join(left, right, pairs, relation_name=relation_name)


def join(left: Table, right: Table, on: Sequence[tuple[str, str]], *,
         relation_name: str | None = None) -> Table:
    """Equi-join ``left`` and ``right`` on pairs of (left attr, right attr).

    The output schema is the left schema followed by the right schema's
    attributes that are not join keys; NULL join keys never match.
    """
    _validate_join_keys(left, right, on)
    right_key_names = {r for _, r in on}
    right_carry = [n for n in right.schema.attribute_names if n not in right_key_names]
    out_schema = _join_output_schema(left, right, right_carry, relation_name)

    index = _build_hash_index(right, [r for _, r in on])
    left_positions = [left.schema.position(lname) for lname, _ in on]
    carry_positions = [right.schema.position(n) for n in right_carry]

    rows = []
    for values in left.tuples():
        key = tuple(values[p] for p in left_positions)
        if any(is_null(k) for k in key):
            continue
        for right_values in index.get(key, ()):
            rows.append((*values, *(right_values[p] for p in carry_positions)))
    return Table(out_schema, rows, coerce=False)


def left_outer_join(left: Table, right: Table, on: Sequence[tuple[str, str]], *,
                    relation_name: str | None = None) -> Table:
    """Left outer equi-join; unmatched left rows are padded with NULLs."""
    _validate_join_keys(left, right, on)
    right_key_names = {r for _, r in on}
    right_carry = [n for n in right.schema.attribute_names if n not in right_key_names]
    out_schema = _join_output_schema(left, right, right_carry, relation_name)

    index = _build_hash_index(right, [r for _, r in on])
    left_positions = [left.schema.position(lname) for lname, _ in on]
    carry_positions = [right.schema.position(n) for n in right_carry]
    padding = tuple([None] * len(right_carry))

    rows = []
    for values in left.tuples():
        key = tuple(values[p] for p in left_positions)
        matches = [] if any(is_null(k) for k in key) else index.get(key, [])
        if matches:
            for right_values in matches:
                rows.append((*values, *(right_values[p] for p in carry_positions)))
        else:
            rows.append((*values, *padding))
    return Table(out_schema, rows, coerce=False)


def _validate_join_keys(left: Table, right: Table, on: Sequence[tuple[str, str]]) -> None:
    if not on:
        raise SchemaError("join requires at least one key pair")
    for left_name, right_name in on:
        if left_name not in left.schema:
            raise UnknownAttributeError(left_name, left.schema.attribute_names)
        if right_name not in right.schema:
            raise UnknownAttributeError(right_name, right.schema.attribute_names)


def _join_output_schema(left: Table, right: Table, right_carry: Sequence[str],
                        relation_name: str | None) -> Schema:
    attributes = list(left.schema.attributes)
    taken = set(left.schema.attribute_names)
    for name in right_carry:
        attribute = right.schema.attribute(name)
        out_name = name if name not in taken else f"{right.name}.{name}"
        attributes.append(attribute.with_name(out_name))
        taken.add(out_name)
    return Schema(relation_name or f"{left.name}_{right.name}", attributes)


def _build_hash_index(table: Table, key_names: Sequence[str]) -> dict[tuple, list[tuple]]:
    positions = [table.schema.position(n) for n in key_names]
    index: dict[tuple, list[tuple]] = defaultdict(list)
    for values in table.tuples():
        key = tuple(values[p] for p in positions)
        if any(is_null(k) for k in key):
            continue
        index[key].append(values)
    return index


# -- set operators ----------------------------------------------------------------


def union_all(
    left: Table, right: Table, *, relation_name: str | None = None, provenance=None
) -> Table:
    """Bag union: all rows of both inputs (schemas must be union compatible).

    With a :class:`~repro.provenance.model.ProvenanceStore` the output rows'
    lineage is recorded under the output relation: each row is witnessed by
    the input row it came from. Lineage is recorded only when both inputs
    carry the stable row-identity column (positional keys go stale as soon
    as a later derivation removes or reorders rows).
    """
    if not left.schema.compatible_with(right.schema):
        raise SchemaError(f"cannot union {left.name!r} and {right.name!r}: incompatible schemas")
    schema = left.schema if relation_name is None else left.schema.rename(relation_name)
    result = Table(schema, [*left.tuples(), *right.tuples()])
    track = (
        provenance is not None
        and provenance.enabled
        and left.has_row_keys()
        and right.has_row_keys()
    )
    if track:
        keys = result.row_keys()
        offset = 0
        for source in (left, right):
            for index, source_key in enumerate(source.row_keys()):
                if ":" in source_key:
                    ref = provenance.ref(source.name, source_key)
                else:
                    ref = provenance.ref(source.name, f"{source.name}:{source_key}")
                provenance.record_tuple(
                    result.name,
                    keys[offset + index],
                    operator="union",
                    witnesses=(frozenset((ref,)),),
                )
            offset += len(source)
    return result


def union(
    left: Table, right: Table, *, relation_name: str | None = None, provenance=None
) -> Table:
    """Set union: union_all followed by duplicate elimination."""
    combined = union_all(left, right, relation_name=relation_name, provenance=provenance)
    return distinct(combined, provenance=provenance)


def difference(left: Table, right: Table) -> Table:
    """Rows of ``left`` that do not appear in ``right``."""
    if not left.schema.compatible_with(right.schema):
        raise SchemaError(
            f"cannot difference {left.name!r} and {right.name!r}: incompatible schemas")
    right_rows = set(right.tuples())
    return left.replace_rows([values for values in left.tuples() if values not in right_rows])


def distinct(table: Table, names: Sequence[str] | None = None, *, provenance=None) -> Table:
    """Remove duplicate rows (optionally considering only ``names``).

    With a :class:`~repro.provenance.model.ProvenanceStore` the collapsed
    duplicates' lineage is merged into the surviving row — duplicate
    elimination is a why-provenance union: the kept tuple is witnessed by
    every occurrence it stands for. Lineage is recorded only when the table
    carries the stable row-identity column: positional keys would shift as
    soon as a duplicate is removed, misattributing every later row.
    """
    if names is None:
        positions = list(range(table.schema.arity))
    else:
        positions = [table.schema.position(n) for n in names]
    first_seen: dict[tuple, int] = {}
    merged: dict[int, list[int]] = {}
    rows = []
    for index, values in enumerate(table.tuples()):
        key = tuple(values[p] for p in positions)
        kept = first_seen.get(key)
        if kept is None:
            first_seen[key] = index
            rows.append(values)
        else:
            merged.setdefault(kept, []).append(index)
    result = table.replace_rows(rows)
    if provenance is not None and provenance.enabled and merged and table.has_row_keys():
        keys = table.row_keys()
        for kept, duplicates in merged.items():
            provenance.merge_tuples(
                table.name, keys[kept], [keys[i] for i in duplicates], operator="distinct"
            )
    return result


# -- ordering -----------------------------------------------------------------------


def sort(table: Table, names: Sequence[str], *, descending: bool = False) -> Table:
    """Sort rows by the attributes ``names``; NULLs sort last either way."""
    positions = [table.schema.position(n) for n in names]

    def has_null_key(values: tuple) -> bool:
        return any(is_null(values[p]) for p in positions)

    def sort_key(values: tuple) -> tuple:
        return tuple(values[p] for p in positions)

    with_keys = [values for values in table.tuples() if not has_null_key(values)]
    with_nulls = [values for values in table.tuples() if has_null_key(values)]
    ordered = sorted(with_keys, key=sort_key, reverse=descending)
    return table.replace_rows([*ordered, *with_nulls])


def limit(table: Table, count: int) -> Table:
    """Return the first ``count`` rows."""
    return table.head(count)


# -- aggregation --------------------------------------------------------------------


def _agg_count(values: list[Any]) -> int:
    return sum(1 for v in values if not is_null(v))


def _agg_sum(values: list[Any]) -> Any:
    present = [v for v in values if not is_null(v)]
    return sum(present) if present else None


def _agg_avg(values: list[Any]) -> Any:
    present = [v for v in values if not is_null(v)]
    return (sum(present) / len(present)) if present else None


def _agg_min(values: list[Any]) -> Any:
    present = [v for v in values if not is_null(v)]
    return min(present) if present else None


def _agg_max(values: list[Any]) -> Any:
    present = [v for v in values if not is_null(v)]
    return max(present) if present else None


def _agg_count_distinct(values: list[Any]) -> int:
    return len({v for v in values if not is_null(v)})


def _agg_first(values: list[Any]) -> Any:
    for value in values:
        if not is_null(value):
            return value
    return None


AGGREGATE_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "count_distinct": _agg_count_distinct,
    "first": _agg_first,
}


class Aggregation:
    """Specification of one aggregate output column."""

    __slots__ = ("function", "attribute", "alias")

    def __init__(self, function: str, attribute: str, alias: str | None = None):
        if function not in AGGREGATE_FUNCTIONS:
            raise SchemaError(
                f"unknown aggregate {function!r}; available: {sorted(AGGREGATE_FUNCTIONS)}")
        self.function = function
        self.attribute = attribute
        self.alias = alias or f"{function}_{attribute}"

    def compute(self, values: list[Any]) -> Any:
        """Apply the aggregate function to the given column values."""
        return AGGREGATE_FUNCTIONS[self.function](values)

    def __repr__(self) -> str:
        return f"Aggregation({self.function}({self.attribute}) as {self.alias})"


def aggregate(table: Table, aggregations: Sequence[Aggregation], *,
              relation_name: str | None = None) -> Table:
    """Aggregate the whole table to a single row."""
    return group_by(table, [], aggregations, relation_name=relation_name)


def group_by(table: Table, keys: Sequence[str], aggregations: Sequence[Aggregation], *,
             relation_name: str | None = None) -> Table:
    """Group rows by ``keys`` and compute ``aggregations`` per group."""
    for aggregation in aggregations:
        if aggregation.attribute not in table.schema:
            raise UnknownAttributeError(aggregation.attribute, table.schema.attribute_names)
    key_positions = [table.schema.position(k) for k in keys]
    agg_positions = [table.schema.position(a.attribute) for a in aggregations]

    groups: dict[tuple, list[tuple]] = defaultdict(list)
    for values in table.tuples():
        groups[tuple(values[p] for p in key_positions)].append(values)
    if not keys and not groups:
        groups[()] = []

    attributes = [table.schema.attribute(k) for k in keys]
    attributes += [Attribute(a.alias, DataType.ANY) for a in aggregations]
    schema = Schema(relation_name or f"{table.name}_agg", attributes)

    rows = []
    for key, members in groups.items():
        cells = list(key)
        for aggregation, position in zip(aggregations, agg_positions):
            cells.append(aggregation.compute([values[position] for values in members]))
        rows.append(tuple(cells))
    return Table(schema, rows)
