"""Relation schemas: named, typed attribute lists.

A :class:`Schema` describes the shape of a :class:`~repro.relational.table.Table`
and is also the unit exchanged between the matching and mapping components
(the knowledge base stores source and target schemas as metadata facts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.errors import DuplicateAttributeError, SchemaError, UnknownAttributeError
from repro.relational.types import DataType

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name; unique within its schema.
    dtype:
        Declared :class:`DataType`. ``ANY`` means "not yet known".
    nullable:
        Whether NULL values are admissible. Wrangling sources are almost
        always nullable; target schemas may declare required attributes.
    description:
        Optional human-readable documentation carried into the knowledge base.
    """

    name: str
    dtype: DataType = DataType.ANY
    nullable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.dtype, DataType):
            object.__setattr__(self, "dtype", DataType.from_name(str(self.dtype)))

    def with_name(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a different name."""
        return Attribute(name=name, dtype=self.dtype, nullable=self.nullable,
                         description=self.description)

    def with_type(self, dtype: DataType) -> "Attribute":
        """Return a copy of this attribute with a different declared type."""
        return Attribute(name=self.name, dtype=dtype, nullable=self.nullable,
                         description=self.description)

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


class Schema:
    """An ordered collection of uniquely named attributes.

    Schemas are immutable; transformation helpers return new instances.
    """

    __slots__ = ("_name", "_attributes", "_index", "_key")

    def __init__(self, name: str, attributes: Sequence[Attribute | str],
                 key: Sequence[str] = ()):
        if not name:
            raise SchemaError("schema name must be a non-empty string")
        normalised: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                normalised.append(Attribute(attribute))
            elif isinstance(attribute, Attribute):
                normalised.append(attribute)
            else:
                raise SchemaError(
                    f"attributes must be Attribute or str, got {type(attribute).__name__}")
        names = [a.name for a in normalised]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise DuplicateAttributeError(
                f"schema {name!r} declares duplicate attributes: {sorted(duplicates)}")
        self._name = name
        self._attributes = tuple(normalised)
        self._index = {a.name: i for i, a in enumerate(self._attributes)}
        key_names = tuple(key)
        for key_name in key_names:
            if key_name not in self._index:
                raise UnknownAttributeError(key_name, tuple(self._index))
        self._key = key_names

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """Name of the relation this schema describes."""
        return self._name

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The ordered attributes."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The ordered attribute names."""
        return tuple(a.name for a in self._attributes)

    @property
    def key(self) -> tuple[str, ...]:
        """Declared key attributes (possibly empty)."""
        return self._key

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        return self.attribute(name)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.attribute_names) from None

    def position(self, name: str) -> int:
        """Return the ordinal position of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.attribute_names) from None

    def dtype(self, name: str) -> DataType:
        """Return the declared type of attribute ``name``."""
        return self.attribute(name).dtype

    # -- equality / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (self._name == other._name and self._attributes == other._attributes
                and self._key == other._key)

    def __hash__(self) -> int:
        return hash((self._name, self._attributes, self._key))

    def __repr__(self) -> str:
        attrs = ", ".join(str(a) for a in self._attributes)
        return f"Schema({self._name}: {attrs})"

    # -- transformation helpers ---------------------------------------------

    def rename(self, name: str) -> "Schema":
        """Return a copy of this schema with a different relation name."""
        return Schema(name, self._attributes, self._key)

    def rename_attributes(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with attributes renamed per ``mapping``."""
        for old in mapping:
            if old not in self._index:
                raise UnknownAttributeError(old, self.attribute_names)
        renamed = [a.with_name(mapping.get(a.name, a.name)) for a in self._attributes]
        new_key = tuple(mapping.get(k, k) for k in self._key)
        return Schema(self._name, renamed, new_key)

    def project(self, names: Sequence[str], relation_name: str | None = None) -> "Schema":
        """Return a schema containing only ``names`` (in the given order)."""
        attrs = [self.attribute(n) for n in names]
        key = tuple(k for k in self._key if k in names)
        return Schema(relation_name or self._name, attrs, key)

    def drop(self, names: Iterable[str]) -> "Schema":
        """Return a schema without the attributes in ``names``."""
        to_drop = set(names)
        for n in to_drop:
            if n not in self._index:
                raise UnknownAttributeError(n, self.attribute_names)
        kept = [a.name for a in self._attributes if a.name not in to_drop]
        return self.project(kept)

    def add(self, attribute: Attribute) -> "Schema":
        """Return a schema with ``attribute`` appended."""
        return Schema(self._name, (*self._attributes, attribute), self._key)

    def with_key(self, key: Sequence[str]) -> "Schema":
        """Return a schema with a different declared key."""
        return Schema(self._name, self._attributes, tuple(key))

    def merge(self, other: "Schema", relation_name: str | None = None) -> "Schema":
        """Concatenate two schemas (used by joins); duplicate names from
        ``other`` are prefixed with its relation name."""
        merged: list[Attribute] = list(self._attributes)
        taken = set(self.attribute_names)
        for attribute in other.attributes:
            name = attribute.name
            if name in taken:
                name = f"{other.name}.{attribute.name}"
            if name in taken:
                raise DuplicateAttributeError(
                    f"cannot merge schemas: attribute {name!r} already present")
            merged.append(attribute.with_name(name))
            taken.add(name)
        return Schema(relation_name or f"{self._name}_{other.name}", merged)

    def compatible_with(self, other: "Schema") -> bool:
        """Union compatibility: same arity and pairwise-compatible types."""
        if self.arity != other.arity:
            return False
        for mine, theirs in zip(self._attributes, other.attributes):
            if mine.dtype is DataType.ANY or theirs.dtype is DataType.ANY:
                continue
            if mine.dtype is not theirs.dtype:
                numeric = {DataType.INTEGER, DataType.FLOAT}
                if not (mine.dtype in numeric and theirs.dtype in numeric):
                    return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary (used by the knowledge base)."""
        return {
            "name": self._name,
            "attributes": [
                {
                    "name": a.name,
                    "dtype": a.dtype.value,
                    "nullable": a.nullable,
                    "description": a.description,
                }
                for a in self._attributes
            ],
            "key": list(self._key),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        attributes = [
            Attribute(
                name=item["name"],
                dtype=DataType.from_name(item.get("dtype", "any")),
                nullable=item.get("nullable", True),
                description=item.get("description", ""),
            )
            for item in payload["attributes"]
        ]
        return cls(payload["name"], attributes, tuple(payload.get("key", ())))
