"""Key normalisation shared by joins, indexes and entity resolution.

Web-extracted values carry formatting noise (case drift, stray whitespace —
think ``"M1 1AA"`` vs ``"m11aa"``). Every component that uses values as
*keys* — equi-joins in mapping execution, CFD witness lookups, accuracy and
relevance indexes, duplicate blocking — normalises them through
:func:`normalise_key` so the same real-world value always maps to the same
key, regardless of which source it came from.
"""

from __future__ import annotations

from typing import Any

from repro.relational.types import is_null

__all__ = ["normalise_key", "normalise_key_tuple"]


def normalise_key(value: Any) -> Any:
    """Normalise one value for use as a join/lookup key.

    Strings are lower-cased and have all whitespace removed; integral floats
    become ints; NULLs map to None. Non-key comparisons (e.g. accuracy of a
    description) should *not* use this — it is deliberately aggressive.
    """
    if is_null(value):
        return None
    if isinstance(value, str):
        return "".join(value.lower().split())
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def normalise_key_tuple(values) -> tuple:
    """Normalise a composite key."""
    return tuple(normalise_key(value) for value in values)
