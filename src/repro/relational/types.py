"""Attribute data types, coercion and inference.

The substrate supports a deliberately small set of scalar types that cover
the wrangling scenario in the paper: strings, integers, floats and booleans,
plus SQL-style NULL (represented as Python ``None``).
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.relational.errors import TypeCoercionError

__all__ = [
    "DataType",
    "NULL",
    "is_null",
    "coerce_value",
    "infer_type",
    "infer_common_type",
    "parse_literal",
]

#: Canonical NULL value used across the relational layer.
NULL = None


class DataType(enum.Enum):
    """Scalar data types supported by the relational substrate."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    #: ANY is used for attributes whose type is unknown (e.g. all-null columns).
    ANY = "any"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a type from its lower-case name (``"string"``, ``"int"``...)."""
        normalised = name.strip().lower()
        aliases = {
            "str": cls.STRING,
            "string": cls.STRING,
            "text": cls.STRING,
            "varchar": cls.STRING,
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "numeric": cls.FLOAT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
            "any": cls.ANY,
        }
        if normalised not in aliases:
            raise TypeCoercionError(f"unknown data type name {name!r}")
        return aliases[normalised]


def is_null(value: Any) -> bool:
    """Return True when ``value`` represents SQL NULL.

    ``None`` is the canonical null; NaN floats are also treated as null
    because noisy numeric extraction frequently produces them.
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


_TRUE_STRINGS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_STRINGS = frozenset({"false", "f", "no", "n", "0"})


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, returning NULL unchanged.

    Raises :class:`TypeCoercionError` when the value cannot be represented in
    the requested type (e.g. ``"abc"`` as INTEGER).
    """
    if is_null(value):
        return NULL
    if dtype is DataType.ANY:
        return value
    if dtype is DataType.STRING:
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if dtype is DataType.INTEGER:
        return _coerce_integer(value)
    if dtype is DataType.FLOAT:
        return _coerce_float(value)
    if dtype is DataType.BOOLEAN:
        return _coerce_boolean(value)
    raise TypeCoercionError(f"unsupported data type {dtype!r}")  # pragma: no cover


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not value.is_integer():
            raise TypeCoercionError(f"cannot coerce non-integral float {value!r} to INTEGER")
        return int(value)
    if isinstance(value, str):
        text = value.strip().replace(",", "")
        try:
            return int(text)
        except ValueError:
            try:
                as_float = float(text)
            except ValueError:
                raise TypeCoercionError(f"cannot coerce {value!r} to INTEGER") from None
            if as_float.is_integer():
                return int(as_float)
            raise TypeCoercionError(f"cannot coerce {value!r} to INTEGER") from None
    raise TypeCoercionError(f"cannot coerce {type(value).__name__} value {value!r} to INTEGER")


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip().replace(",", "").replace("£", "").replace("$", "")
        try:
            return float(text)
        except ValueError:
            raise TypeCoercionError(f"cannot coerce {value!r} to FLOAT") from None
    raise TypeCoercionError(f"cannot coerce {type(value).__name__} value {value!r} to FLOAT")


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        text = value.strip().lower()
        if text in _TRUE_STRINGS:
            return True
        if text in _FALSE_STRINGS:
            return False
    raise TypeCoercionError(f"cannot coerce {value!r} to BOOLEAN")


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` able to hold ``value``."""
    if is_null(value):
        return DataType.ANY
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return _infer_string_type(value)
    return DataType.STRING


def _infer_string_type(text: str) -> DataType:
    stripped = text.strip()
    if not stripped:
        return DataType.ANY
    lowered = stripped.lower()
    if lowered in _TRUE_STRINGS | _FALSE_STRINGS and lowered not in {"0", "1"}:
        return DataType.BOOLEAN
    try:
        int(stripped)
        return DataType.INTEGER
    except ValueError:
        pass
    try:
        float(stripped)
        return DataType.FLOAT
    except ValueError:
        pass
    return DataType.STRING


_WIDENING_ORDER = {
    DataType.BOOLEAN: 0,
    DataType.INTEGER: 1,
    DataType.FLOAT: 2,
    DataType.STRING: 3,
}


def infer_common_type(types: list[DataType]) -> DataType:
    """Return the narrowest type that can represent every type in ``types``.

    ANY (all-null) entries are ignored; numeric types widen to FLOAT; any
    disagreement beyond that widens to STRING.
    """
    concrete = [t for t in types if t is not DataType.ANY]
    if not concrete:
        return DataType.ANY
    if all(t is concrete[0] for t in concrete):
        return concrete[0]
    numeric = {DataType.INTEGER, DataType.FLOAT}
    if all(t in numeric for t in concrete):
        return DataType.FLOAT
    return DataType.STRING


def parse_literal(text: str) -> Any:
    """Parse a raw CSV/string literal into the most natural Python value.

    Empty strings and the common null spellings become NULL.
    """
    stripped = text.strip()
    if stripped == "" or stripped.lower() in {"null", "none", "na", "n/a", "nan"}:
        return NULL
    inferred = infer_type(stripped)
    if inferred is DataType.ANY:
        return NULL
    if inferred is DataType.STRING:
        return stripped
    return coerce_value(stripped, inferred)
