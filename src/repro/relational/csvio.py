"""CSV import/export for relational tables.

The paper's knowledge base keeps extensional data "in external file systems
or databases"; this module is the file-system backend of that design. CSV is
the only format needed by the real-estate scenario (web-extraction output and
open-government downloads are both tabular).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.relational.errors import CsvFormatError
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import infer_common_type, infer_type, is_null, parse_literal

__all__ = ["read_csv", "write_csv", "read_csv_text", "write_csv_text"]


def read_csv(path: str | Path, *, name: str | None = None, schema: Schema | None = None,
             delimiter: str = ",") -> Table:
    """Load a CSV file into a :class:`Table`.

    When ``schema`` is omitted it is inferred: the header row provides the
    attribute names, and types are inferred from the data (columns with mixed
    content widen to STRING).
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        return _read(handle, name or path.stem, schema, delimiter)


def read_csv_text(text: str, *, name: str, schema: Schema | None = None,
                  delimiter: str = ",") -> Table:
    """Parse CSV content held in a string (used by tests and the extractor)."""
    return _read(io.StringIO(text), name, schema, delimiter)


def _read(handle, name: str, schema: Schema | None, delimiter: str) -> Table:
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise CsvFormatError("CSV input is empty (no header row)") from None
    header = [column.strip() for column in header]
    if any(not column for column in header):
        raise CsvFormatError(f"CSV header contains an empty column name: {header!r}")
    if len(set(header)) != len(header):
        raise CsvFormatError(f"CSV header contains duplicate column names: {header!r}")

    raw_rows: list[list[str]] = []
    for line_number, record in enumerate(reader, start=2):
        if not record:
            continue
        if len(record) != len(header):
            raise CsvFormatError(
                f"line {line_number}: expected {len(header)} fields, got {len(record)}")
        raw_rows.append(record)

    parsed = [[parse_literal(cell) for cell in record] for record in raw_rows]

    if schema is None:
        attributes = []
        for position, column_name in enumerate(header):
            observed = [infer_type(row[position]) for row in parsed]
            attributes.append(Attribute(column_name, infer_common_type(observed)))
        schema = Schema(name, attributes)
    else:
        if list(schema.attribute_names) != header:
            raise CsvFormatError(
                f"CSV header {header!r} does not match schema attributes "
                f"{list(schema.attribute_names)!r}")
    return Table(schema, parsed)


def write_csv(table: Table, path: str | Path, *, delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        _write(table, handle, delimiter)


def write_csv_text(table: Table, *, delimiter: str = ",") -> str:
    """Render ``table`` as CSV text."""
    buffer = io.StringIO()
    _write(table, buffer, delimiter)
    return buffer.getvalue()


def _write(table: Table, handle, delimiter: str) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    writer.writerow(table.schema.attribute_names)
    for values in table.tuples():
        writer.writerow(["" if is_null(v) else _render(v) for v in values])


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
