"""Bounded repair enumeration: the certain-answer fallback.

Queries outside the rewritable class of :mod:`repro.cqa.rewrite` (boolean
queries, self-joins, cyclic key joins, non-key/non-key joins) are answered
by materialising candidate repairs and intersecting the query answers.
Under primary keys a repair keeps exactly one distinct tuple per block of
key-equal tuples, so the repair space is the cross product of per-block
choices. Each candidate repair is represented with the incremental
engine's change-set machinery — a :class:`~repro.incremental.delta.ChangeSet`
of :class:`~repro.incremental.delta.SourceRowsDelta` removals against the
dirty base tables — and materialised by applying those removals.

Two exact-preserving reductions keep the space small before any budget
kicks in: blocks with a single distinct tuple are fixed, and blocks where
no tuple matches any query atom's constant bindings are forced to their
first choice (their tuples can never join into an answer). Past
``max_repairs`` the enumeration switches to seeded sampling, which
over-approximates the certain answers (``exact=False``) — unless the
intersection empties, which is exact regardless of coverage, since it can
only shrink.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.cqa.query import ConjunctiveQuery, Var
from repro.cqa.rewrite import build_edb, naive_program
from repro.datalog.engine import query as run_query
from repro.datalog.program import Program
from repro.datalog.terms import Atom, Constant, Variable, hash_key
from repro.incremental.delta import ChangeSet, SourceRowsDelta

__all__ = [
    "EnumerationConfig",
    "EnumerationResult",
    "RepairSpace",
    "build_repair_space",
    "enumerate_certain",
    "query_answers",
]


@dataclass(frozen=True)
class EnumerationConfig:
    """Budget knobs for repair enumeration."""

    #: Exhaustive below this many repairs; seeded sampling of exactly this
    #: many above it.
    max_repairs: int = 512
    #: Wall-clock budget; ``None`` means unbounded.
    timeout_seconds: float | None = None
    #: Seed for the sampling fallback.
    seed: int = 0


@dataclass(frozen=True)
class EnumerationResult:
    """The intersection of query answers over the enumerated repairs."""

    answers: tuple[tuple, ...]
    #: True when ``answers`` is exactly the certain answers (full coverage,
    #: or an empty intersection, which cannot grow back).
    exact: bool
    repairs_evaluated: int
    total_repairs: int
    #: True when sampling replaced exhaustive enumeration.
    truncated: bool
    timed_out: bool
    seconds: float

    @property
    def holds(self) -> bool:
        """For boolean queries: whether the query is certainly true."""
        return bool(self.answers)


@dataclass(frozen=True)
class _Block:
    relation: str
    rows: tuple[int, ...]
    #: Row-index groups, one per distinct tuple value in the block.
    choices: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class RepairSpace:
    """The per-block choice structure of the repair space of a database."""

    edb: dict[str, list[tuple]]
    #: Removals shared by every candidate repair (irrelevant-block fixes).
    forced: tuple[tuple[str, tuple[int, ...]], ...]
    choice_blocks: tuple[_Block, ...]
    total_repairs: int

    def change_sets(
        self, *, max_repairs: int, seed: int = 0
    ) -> Iterator[ChangeSet]:
        """Candidate repairs as removal change sets against the dirty base.

        Exhaustive when the space fits in ``max_repairs``, otherwise a
        seeded sample of ``max_repairs`` combinations.
        """
        widths = [len(block.choices) for block in self.choice_blocks]
        if self.total_repairs <= max_repairs:
            combos: Iterable[tuple[int, ...]] = itertools.product(
                *(range(width) for width in widths)
            )
        else:
            rng = random.Random(seed)
            combos = (
                tuple(rng.randrange(width) for width in widths)
                for _ in range(max_repairs)
            )
        for combo in combos:
            yield self._combo_change_set(combo)

    def _combo_change_set(self, combo: Sequence[int]) -> ChangeSet:
        removed: dict[str, set[int]] = {
            relation: set(indexes) for relation, indexes in self.forced
        }
        for block, choice in zip(self.choice_blocks, combo):
            keep = set(block.choices[choice])
            removed.setdefault(block.relation, set()).update(
                index for index in block.rows if index not in keep
            )
        deltas = tuple(
            SourceRowsDelta(relation=relation, removed_indexes=tuple(sorted(indexes)))
            for relation, indexes in sorted(removed.items())
            if indexes
        )
        return ChangeSet(deltas=deltas, origin="cqa.enumerate")

    def materialise(self, change_set: ChangeSet) -> dict[str, list[tuple]]:
        """Apply a repair change set to the dirty base tables."""
        removed: dict[str, set[int]] = {}
        for delta in change_set.deltas:
            removed.setdefault(delta.relation, set()).update(delta.removed_indexes)
        repaired: dict[str, list[tuple]] = {}
        for relation, rows in self.edb.items():
            dropped = removed.get(relation)
            if not dropped:
                repaired[relation] = rows
            else:
                repaired[relation] = [
                    row for index, row in enumerate(rows) if index not in dropped
                ]
        return repaired


def _constant_tests(
    query: ConjunctiveQuery | None, schemas: Mapping[str, Sequence[str]]
) -> dict[str, list[list[tuple[int, Any]]]]:
    """Per relation, each atom's constant bindings as (position, key) tests."""
    tests: dict[str, list[list[tuple[int, Any]]]] = {}
    if query is None:
        return tests
    for atom in query.atoms:
        attrs = list(schemas.get(atom.relation, ()))
        if not attrs:
            continue
        atom_tests = [
            (attrs.index(attribute), hash_key(term))
            for attribute, term in atom.bindings
            if not isinstance(term, Var) and attribute in attrs
        ]
        tests.setdefault(atom.relation, []).append(atom_tests)
    return tests


def build_repair_space(
    tables: Mapping[str, Any],
    schemas: Mapping[str, Sequence[str]],
    keys: Mapping[str, Sequence[str]],
    query: ConjunctiveQuery | None = None,
) -> RepairSpace:
    """Group each keyed relation into key-equal blocks and find the choices.

    When ``query`` is given, blocks none of whose tuples can satisfy any of
    the query's constant bindings are forced to their first choice instead
    of multiplying the space — an exact-preserving reduction.
    """
    edb = build_edb(tables)
    tests = _constant_tests(query, schemas)
    relevant_relations = (
        set(query.relations()) if query is not None else set(edb)
    )
    forced: list[tuple[str, tuple[int, ...]]] = []
    choice_blocks: list[_Block] = []
    total = 1
    for relation in sorted(edb):
        key_attrs = tuple(keys.get(relation, ()))
        if not key_attrs or relation not in relevant_relations:
            continue
        attrs = list(schemas.get(relation, ()))
        if any(a not in attrs for a in key_attrs):
            continue
        positions = tuple(attrs.index(a) for a in key_attrs)
        blocks: dict[tuple, list[int]] = {}
        for index, row in enumerate(edb[relation]):
            blocks.setdefault(
                tuple(hash_key(row[p]) for p in positions), []
            ).append(index)
        atom_tests = tests.get(relation)
        for _key, indexes in sorted(blocks.items(), key=_block_order):
            groups: dict[tuple, list[int]] = {}
            for index in indexes:
                row = edb[relation][index]
                groups.setdefault(tuple(hash_key(v) for v in row), []).append(index)
            if len(groups) < 2:
                continue
            if atom_tests is not None:
                relevant = any(
                    all(
                        hash_key(edb[relation][index][p]) == expected
                        for p, expected in test
                    )
                    for index in indexes
                    for test in atom_tests
                )
                if not relevant:
                    kept = next(iter(groups.values()))
                    dropped = tuple(i for i in indexes if i not in set(kept))
                    forced.append((relation, dropped))
                    continue
            choice_blocks.append(
                _Block(
                    relation=relation,
                    rows=tuple(indexes),
                    choices=tuple(tuple(group) for group in groups.values()),
                )
            )
            total *= len(groups)
    return RepairSpace(
        edb=edb,
        forced=tuple(forced),
        choice_blocks=tuple(choice_blocks),
        total_repairs=total,
    )


def _block_order(item: tuple) -> tuple:
    """Deterministic block ordering; key tuples mix types (NULLs, strings)."""
    key, _indexes = item
    return tuple((tag,) + _order_key((value,)) for tag, value in key)


def _order_key(row: tuple) -> tuple:
    parts = []
    for value in row:
        if isinstance(value, bool):
            parts.append((2, str(value), 0.0))
        elif isinstance(value, (int, float)):
            parts.append((0, "", float(value)))
        elif value is None:
            parts.append((3, "", 0.0))
        else:
            parts.append((1, str(value), 0.0))
    return tuple(parts)


def _repair_answers(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    edb: Mapping[str, list[tuple]],
) -> set[tuple]:
    """Answers of ``query`` over one repaired instance; boolean queries
    report the empty tuple when satisfied."""
    witness_vars = query.head or tuple(query.variables())
    if witness_vars:
        program, goal = naive_program(query, schemas, head_vars=witness_vars)
        rows = run_query(program, goal, dict(edb))
        if query.head:
            return set(rows)
        return {()} if rows else set()
    # Ground boolean query: every atom must have a matching tuple.
    for atom in query.atoms:
        attrs = list(schemas[atom.relation])
        bound = dict(atom.bindings)
        pattern = Atom(
            atom.relation,
            tuple(
                Constant(bound[a]) if a in bound else Variable("_") for a in attrs
            ),
        )
        if not run_query(Program(), pattern, dict(edb)):
            return set()
    return {()}


def query_answers(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    tables: Mapping[str, Any],
) -> tuple[tuple, ...]:
    """Plain (single-instance) answers of ``query`` over ``tables``.

    Boolean queries report ``((),)`` when satisfied and ``()`` otherwise,
    matching the certain-answer convention.
    """
    answers = _repair_answers(query, schemas, build_edb(tables))
    return tuple(sorted(answers, key=_order_key))


def enumerate_certain(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    tables: Mapping[str, Any],
    keys: Mapping[str, Sequence[str]],
    config: EnumerationConfig | None = None,
) -> EnumerationResult:
    """Certain answers of ``query`` by (bounded) repair enumeration.

    This is also the brute-force ground truth the rewriting is tested
    against: with a large enough ``max_repairs`` budget the result is the
    exact intersection of the query's answers over every repair.
    """
    config = config or EnumerationConfig()
    space = build_repair_space(tables, schemas, keys, query)
    truncated = space.total_repairs > config.max_repairs
    started = time.monotonic()
    answers: set[tuple] | None = None
    evaluated = 0
    timed_out = False
    for change_set in space.change_sets(
        max_repairs=config.max_repairs, seed=config.seed
    ):
        repaired = space.materialise(change_set)
        per_repair = _repair_answers(query, schemas, repaired)
        answers = per_repair if answers is None else (answers & per_repair)
        evaluated += 1
        if not answers:
            break
        if (
            config.timeout_seconds is not None
            and time.monotonic() - started > config.timeout_seconds
        ):
            timed_out = True
            break
    seconds = time.monotonic() - started
    final = answers or set()
    covered = not truncated and not timed_out
    exact = covered or not final
    return EnumerationResult(
        answers=tuple(sorted(final, key=_order_key)),
        exact=exact,
        repairs_evaluated=evaluated,
        total_repairs=space.total_repairs,
        truncated=truncated,
        timed_out=timed_out,
        seconds=seconds,
    )
