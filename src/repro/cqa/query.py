"""Conjunctive queries over catalog relations, and the rewritability test.

Consistent query answering (CQA) asks which answers a query returns in
*every* repair of an inconsistent database. Under primary-key constraints a
repair picks exactly one tuple from each group of key-equal tuples, so the
certain answers are the intersection of the query results over an
exponential space of repairs. For a well-known class of self-join-free
conjunctive queries that intersection is first-order rewritable and runs in
logspace over the dirty tables directly (Fuxman & Miller's ``Cforest``;
Koutris & Wijsen, "Consistent Query Answering for Primary Keys in
Logspace"; Koutris, Ouyang & Wijsen for rooted tree queries).

This module holds the query model and the *classifier*: the compact text
form (``q(Name) :- product(sku=S, name=Name), depots(origin_depot=S)``),
key derivation from the exact CFDs learned by :mod:`repro.quality`, and
:func:`classify`, which decides per query whether the rewriting of
:mod:`repro.cqa.rewrite` applies or whether :mod:`repro.cqa.enumerate`
must fall back to bounded repair enumeration.

The accepted class is a key-join forest: the query must be self-join-free,
and every existential variable shared between atoms must have a unique
*hub* atom that owns it — the only keyed atom holding it at a non-key
position, or else a consistent (unkeyed) atom, or, when the variable only
ever appears at key positions, the first atom containing it. Every other
atom containing the variable becomes a child of the hub and, if keyed, may
hold it at key positions only. Each atom may acquire at most one parent
this way and the parent relation must be acyclic. Head variables are
treated as constants and never create edges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.quality.cfd import CFD, WILDCARD

__all__ = [
    "Var",
    "QueryAtom",
    "ConjunctiveQuery",
    "QueryParseError",
    "parse_query",
    "keys_from_cfds",
    "PlanNode",
    "RewritePlan",
    "Classification",
    "classify",
]


class QueryParseError(ValueError):
    """Raised for malformed query text or an ill-formed query model."""


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable (written with a leading uppercase letter)."""

    name: str

    def __str__(self) -> str:
        return self.name


def _format_term(term: Any) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, str):
        return f'"{term}"'
    if term is None:
        return "null"
    if isinstance(term, bool):
        return "true" if term else "false"
    return str(term)


@dataclass(frozen=True)
class QueryAtom:
    """One body atom: a relation with attribute-to-term bindings.

    Terms are :class:`Var` instances or plain constants (str, number, bool,
    ``None``). Attributes the atom does not mention are unconstrained.
    """

    relation: str
    bindings: tuple[tuple[str, Any], ...]

    def __init__(
        self,
        relation: str,
        bindings: Mapping[str, Any] | Iterable[tuple[str, Any]] = (),
    ):
        pairs = tuple(bindings.items()) if isinstance(bindings, Mapping) else tuple(bindings)
        seen: set[str] = set()
        for attribute, _term in pairs:
            if attribute in seen:
                raise QueryParseError(
                    f"atom over {relation!r} binds attribute {attribute!r} twice"
                )
            seen.add(attribute)
        if not pairs:
            raise QueryParseError(f"atom over {relation!r} binds no attributes")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "bindings", pairs)

    @property
    def attributes(self) -> tuple[str, ...]:
        """The mentioned attribute names, in binding order."""
        return tuple(attribute for attribute, _ in self.bindings)

    def term(self, attribute: str) -> Any:
        """The term bound to ``attribute`` (raises ``KeyError`` if absent)."""
        for name, term in self.bindings:
            if name == attribute:
                return term
        raise KeyError(attribute)

    def variables(self) -> list[str]:
        """Distinct variable names, in first-occurrence order."""
        ordered: list[str] = []
        for _attribute, term in self.bindings:
            if isinstance(term, Var) and term.name not in ordered:
                ordered.append(term.name)
        return ordered

    def attributes_of(self, name: str) -> tuple[str, ...]:
        """The attributes that bind the variable ``name`` in this atom."""
        return tuple(
            attribute
            for attribute, term in self.bindings
            if isinstance(term, Var) and term.name == name
        )

    def __str__(self) -> str:
        inner = ", ".join(f"{a}={_format_term(t)}" for a, t in self.bindings)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: head variables over a tuple of body atoms."""

    head: tuple[str, ...]
    atoms: tuple[QueryAtom, ...]
    name: str = "q"

    def __init__(
        self,
        head: Iterable[str | Var],
        atoms: Iterable[QueryAtom],
        name: str = "q",
    ):
        head_names = tuple(h.name if isinstance(h, Var) else str(h) for h in head)
        body = tuple(atoms)
        if len(set(head_names)) != len(head_names):
            raise QueryParseError("head variables must be distinct")
        if not body:
            raise QueryParseError("a query needs at least one body atom")
        body_vars = {v for atom in body for v in atom.variables()}
        missing = [h for h in head_names if h not in body_vars]
        if missing:
            raise QueryParseError(f"head variables {missing} do not occur in the body")
        object.__setattr__(self, "head", head_names)
        object.__setattr__(self, "atoms", body)
        object.__setattr__(self, "name", name)

    @property
    def is_boolean(self) -> bool:
        """True for queries with an empty head (yes/no questions)."""
        return not self.head

    def relations(self) -> tuple[str, ...]:
        """Relation names in atom order (duplicates kept for self-joins)."""
        return tuple(atom.relation for atom in self.atoms)

    def variables(self) -> list[str]:
        """Distinct variable names across the body, in occurrence order."""
        ordered: list[str] = []
        for atom in self.atoms:
            for v in atom.variables():
                if v not in ordered:
                    ordered.append(v)
        return ordered

    def existential_variables(self) -> list[str]:
        """Body variables that are not head variables."""
        head = set(self.head)
        return [v for v in self.variables() if v not in head]

    def __str__(self) -> str:
        head = ", ".join(self.head)
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"{self.name}({head}) :- {body}"


# -- parsing -------------------------------------------------------------------

_TOKEN = re.compile(
    r"""[ \t\r\n]*(?:
          (?P<entails>:-)
        | (?P<lparen>\()
        | (?P<rparen>\))
        | (?P<comma>,)
        | (?P<eq>=)
        | (?P<dot>\.)
        | (?P<string>"[^"]*"|'[^']*')
        | (?P<number>-?\d+(?:\.\d+)?)
        | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    )""",
    re.VERBOSE,
)

_NULL_WORDS = ("null", "none")
_BOOL_WORDS = {"true": True, "false": False}


def _tokenise(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryParseError(f"cannot parse query at: {remainder[:30]!r}")
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
        position = match.end()
    return tokens


def _term_from_token(kind: str, value: str) -> Any:
    if kind == "string":
        return value[1:-1]
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "ident":
        if value == "_":
            raise QueryParseError(
                "anonymous variables are not supported; omit the attribute instead"
            )
        if value[0].isupper() or value.startswith("_"):
            return Var(value)
        if value in _NULL_WORDS:
            return None
        if value in _BOOL_WORDS:
            return _BOOL_WORDS[value]
        return value
    raise QueryParseError(f"unexpected token {value!r} where a term was expected")


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.index = 0

    @property
    def done(self) -> bool:
        return self.index >= len(self.tokens)

    def peek(self) -> tuple[str, str] | None:
        return None if self.done else self.tokens[self.index]

    def take(self, kind: str, what: str) -> str:
        if self.done:
            raise QueryParseError(f"query ends where {what} was expected")
        actual_kind, value = self.tokens[self.index]
        if actual_kind != kind:
            raise QueryParseError(f"expected {what}, found {value!r}")
        self.index += 1
        return value


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse the compact text form of a conjunctive query.

    ``q(Name, Price) :- product(sku="SKU-1", name=Name, price=Price)``.
    Capitalised identifiers are variables; quoted text, numbers, ``true``/
    ``false`` and ``null`` are constants; a bare lowercase word is a string
    constant. A trailing ``.`` is allowed.
    """
    cursor = _Cursor(_tokenise(text))
    name = cursor.take("ident", "a query name")
    cursor.take("lparen", "'('")
    head: list[Var] = []
    while cursor.peek() and cursor.peek()[0] != "rparen":
        if head:
            cursor.take("comma", "','")
        term = _term_from_token("ident", cursor.take("ident", "a head variable"))
        if not isinstance(term, Var):
            raise QueryParseError("head terms must be variables")
        head.append(term)
    cursor.take("rparen", "')'")
    cursor.take("entails", "':-'")
    atoms: list[QueryAtom] = []
    while True:
        relation = cursor.take("ident", "a relation name")
        cursor.take("lparen", "'('")
        bindings: list[tuple[str, Any]] = []
        while cursor.peek() and cursor.peek()[0] != "rparen":
            if bindings:
                cursor.take("comma", "','")
            attribute = cursor.take("ident", "an attribute name")
            cursor.take("eq", "'='")
            token = cursor.peek()
            if token is None or token[0] not in ("string", "number", "ident"):
                raise QueryParseError(f"expected a term for attribute {attribute!r}")
            cursor.index += 1
            bindings.append((attribute, _term_from_token(*token)))
        cursor.take("rparen", "')'")
        atoms.append(QueryAtom(relation, bindings))
        token = cursor.peek()
        if token is None:
            break
        if token[0] == "comma":
            cursor.index += 1
            continue
        if token[0] == "dot":
            cursor.index += 1
            if not cursor.done:
                raise QueryParseError("trailing tokens after final '.'")
            break
        raise QueryParseError(f"unexpected token {token[1]!r} after an atom")
    return ConjunctiveQuery(head, atoms, name=name)


# -- keys from learned CFDs ----------------------------------------------------


def _closure(start: Iterable[str], fds: Sequence[tuple[frozenset[str], str]]) -> set[str]:
    closed = set(start)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fds:
            if rhs not in closed and lhs <= closed:
                closed.add(rhs)
                changed = True
    return closed


def keys_from_cfds(
    cfds: Iterable[CFD],
    schemas: Mapping[str, Sequence[str]],
    *,
    exclude: Sequence[str] = ("_row_id",),
) -> dict[str, tuple[str, ...]]:
    """Derive a primary key per relation from exact variable CFDs.

    Only variable CFDs with confidence 1.0 and an all-wildcard pattern are
    genuine functional dependencies over the whole relation; constant and
    approximate CFDs restrict or hedge and cannot witness a key. The key is
    the attribute-closure minimisation of the full schema (bookkeeping
    columns in ``exclude`` are ignored); relations whose dependencies do
    not determine every attribute from a proper subset get no key and are
    treated as consistent.
    """
    by_relation: dict[str, list[tuple[frozenset[str], str]]] = {}
    for cfd in cfds:
        if cfd.relation not in schemas or not cfd.is_variable or cfd.confidence < 1.0:
            continue
        if any(pattern != WILDCARD for _attribute, pattern in cfd.lhs_pattern):
            continue
        by_relation.setdefault(cfd.relation, []).append((frozenset(cfd.lhs), cfd.rhs))
    keys: dict[str, tuple[str, ...]] = {}
    for relation, fds in by_relation.items():
        attributes = [a for a in schemas[relation] if a not in exclude]
        if not attributes:
            continue
        target = set(attributes)
        candidate = list(attributes)
        for attribute in list(candidate):
            trimmed = [a for a in candidate if a != attribute]
            if trimmed and _closure(trimmed, fds) >= target:
                candidate = trimmed
        if len(candidate) < len(attributes):
            keys[relation] = tuple(candidate)
    return keys


# -- classification ------------------------------------------------------------


@dataclass(frozen=True)
class PlanNode:
    """One atom of a rewritable query, placed in the key-join forest."""

    index: int
    relation: str
    keyed: bool
    key_attrs: tuple[str, ...]
    parent: int | None
    children: tuple[int, ...]
    owned_vars: tuple[str, ...]


@dataclass(frozen=True)
class RewritePlan:
    """The key-join forest of a rewritable query, parents before children."""

    query: ConjunctiveQuery
    nodes: tuple[PlanNode, ...]
    #: Every existential variable's owning atom index (shared and local).
    owners: tuple[tuple[str, int], ...]

    def node(self, index: int) -> PlanNode:
        """The plan node for atom ``index``."""
        for node in self.nodes:
            if node.index == index:
                return node
        raise KeyError(index)

    @property
    def roots(self) -> tuple[PlanNode, ...]:
        """The parentless nodes, one per tree of the forest."""
        return tuple(node for node in self.nodes if node.parent is None)


@dataclass(frozen=True)
class Classification:
    """Whether the certain-answer rewriting applies, and the plan if so."""

    rewritable: bool
    reason: str
    plan: RewritePlan | None = None


def classify(
    query: ConjunctiveQuery, keys: Mapping[str, Sequence[str]]
) -> Classification:
    """Decide whether ``query`` is in the rewritable key-join forest class.

    ``keys`` maps relation names to primary-key attribute tuples; relations
    without an entry are taken to be consistent. A negative answer carries
    the reason and routes the query to :mod:`repro.cqa.enumerate`.
    """
    if query.is_boolean:
        return Classification(
            False, "boolean queries are answered by repair enumeration"
        )
    relations = query.relations()
    if len(set(relations)) != len(relations):
        return Classification(
            False, "the rewriting requires self-join-free queries"
        )
    key_map = {r: tuple(k) for r, k in dict(keys).items() if k}
    head = set(query.head)
    count = len(query.atoms)
    keyed = [atom.relation in key_map for atom in query.atoms]
    key_attrs = [key_map.get(atom.relation, ()) for atom in query.atoms]

    occurrences: dict[str, list[int]] = {}
    value_occurrences: dict[str, list[int]] = {}
    for i, atom in enumerate(query.atoms):
        for v in atom.variables():
            if v in head:
                continue
            occurrences.setdefault(v, []).append(i)
            if not keyed[i] or any(
                a not in key_attrs[i] for a in atom.attributes_of(v)
            ):
                value_occurrences.setdefault(v, []).append(i)

    parent: dict[int, int] = {}
    owner: dict[str, int] = {}
    for v, atoms_of_v in occurrences.items():
        value_occs = value_occurrences.get(v, [])
        if len(atoms_of_v) < 2:
            owner[v] = atoms_of_v[0]
            continue
        keyed_value = [i for i in value_occs if keyed[i]]
        if len(keyed_value) > 1:
            first, second = (query.atoms[i].relation for i in keyed_value[:2])
            return Classification(
                False,
                f"variable {v!r} joins non-key positions of two keyed atoms"
                f" ({first!r} and {second!r})",
            )
        if keyed_value:
            hub = keyed_value[0]
        elif value_occs:
            hub = value_occs[0]
        else:
            hub = atoms_of_v[0]
        owner[v] = hub
        for i in atoms_of_v:
            if i == hub:
                continue
            existing = parent.get(i)
            if existing is not None and existing != hub:
                return Classification(
                    False,
                    f"atom {query.atoms[i].relation!r} would need two parents"
                    f" ({query.atoms[existing].relation!r} and"
                    f" {query.atoms[hub].relation!r})",
                )
            parent[i] = hub

    children: dict[int, list[int]] = {i: [] for i in range(count)}
    for child, hub in parent.items():
        children[hub].append(child)
    order: list[int] = []
    queue = [i for i in range(count) if i not in parent]
    while queue:
        i = queue.pop(0)
        order.append(i)
        queue.extend(sorted(children[i]))
    if len(order) != count:
        return Classification(False, "the key-join structure is cyclic")

    owned: dict[int, list[str]] = {i: [] for i in range(count)}
    for v, hub in owner.items():
        if len(occurrences.get(v, [])) > 1:
            owned[hub].append(v)
    nodes = tuple(
        PlanNode(
            index=i,
            relation=query.atoms[i].relation,
            keyed=keyed[i],
            key_attrs=key_attrs[i],
            parent=parent.get(i),
            children=tuple(sorted(children[i])),
            owned_vars=tuple(sorted(owned[i])),
        )
        for i in order
    )
    plan = RewritePlan(query=query, nodes=nodes, owners=tuple(sorted(owner.items())))
    return Classification(True, "key-join forest", plan)
