"""Consistent query answering (CQA) over unrepaired data.

The pipeline's default mode repairs first and answers questions over the
repaired result. This package adds the complementary mode: *certain
answers* computed directly over the inconsistent pre-repair tables, under
the primary keys and exact CFDs the pipeline has already learned. Queries
in the rewritable key-join forest class compile to stratified datalog
(:mod:`repro.cqa.rewrite`) and run over the dirty tables without ever
materialising a repair; everything else falls back to bounded repair
enumeration (:mod:`repro.cqa.enumerate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.cqa.enumerate import (
    EnumerationConfig,
    EnumerationResult,
    RepairSpace,
    _order_key,
    build_repair_space,
    enumerate_certain,
    query_answers,
)
from repro.cqa.query import (
    Classification,
    ConjunctiveQuery,
    PlanNode,
    QueryAtom,
    QueryParseError,
    RewritePlan,
    Var,
    classify,
    keys_from_cfds,
    parse_query,
)
from repro.cqa.rewrite import (
    CompiledQuery,
    RewriteError,
    build_edb,
    certain_answers,
    compile_certain,
    naive_answers,
    naive_program,
)

__all__ = [
    "Var",
    "QueryAtom",
    "ConjunctiveQuery",
    "QueryParseError",
    "parse_query",
    "keys_from_cfds",
    "PlanNode",
    "RewritePlan",
    "Classification",
    "classify",
    "CompiledQuery",
    "RewriteError",
    "compile_certain",
    "certain_answers",
    "naive_program",
    "naive_answers",
    "build_edb",
    "EnumerationConfig",
    "EnumerationResult",
    "RepairSpace",
    "build_repair_space",
    "enumerate_certain",
    "query_answers",
    "CertainResult",
    "answer_certain",
]


@dataclass(frozen=True)
class CertainResult:
    """Certain answers plus how they were computed."""

    answers: tuple[tuple, ...]
    #: ``"rewriting"`` or ``"enumeration"``.
    method: str
    classification: Classification
    #: Enumeration diagnostics when the fallback ran, else ``None``.
    enumeration: EnumerationResult | None = None

    @property
    def exact(self) -> bool:
        """Whether ``answers`` is exactly the certain answers."""
        return self.enumeration.exact if self.enumeration is not None else True


def answer_certain(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    tables: Mapping[str, Any],
    keys: Mapping[str, Sequence[str]],
    *,
    enumeration: EnumerationConfig | None = None,
) -> CertainResult:
    """Certain answers of ``query``, choosing rewriting when it applies.

    ``tables`` holds the dirty (unrepaired) instances, ``keys`` the primary
    keys; relations without a key are treated as consistent.
    """
    classification = classify(query, keys)
    if classification.rewritable:
        assert classification.plan is not None
        compiled = compile_certain(classification.plan, schemas)
        rows = certain_answers(compiled, tables)
        return CertainResult(
            answers=tuple(sorted((tuple(row) for row in rows), key=_order_key)),
            method="rewriting",
            classification=classification,
        )
    result = enumerate_certain(query, schemas, tables, keys, enumeration)
    return CertainResult(
        answers=result.answers,
        method="enumeration",
        classification=classification,
        enumeration=result,
    )
