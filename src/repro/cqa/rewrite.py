"""Compile rewritable queries into datalog programs over the dirty tables.

The encoding turns the key-join forest of :func:`repro.cqa.query.classify`
into a stratified datalog program whose evaluation over the *unrepaired*
base tables yields exactly the certain answers — no repair is ever
materialised. Per candidate answer the program works block-at-a-time, where
a block is a group of key-equal tuples of a keyed relation:

- ``_cqa_cand`` — the naive answers (certain answers are a subset).
- ``_cqa_{i}_anchor`` — for each atom, the blocks that can be reached for a
  candidate answer: the full join for roots, the parent's matching rows
  joined to the child's key for children.
- ``_cqa_{i}_match`` / ``_cqa_{i}_bad`` / ``_cqa_{i}_good`` — a block is
  *good* when every tuple in it matches the atom's pattern and recursively
  passes all child checks; a single failing tuple makes it *bad*, because a
  repair may pick exactly that tuple.
- ``_cqa_{i}_sat`` — consistent (unkeyed) atoms are the same in every
  repair, so they compile to plain existential checks.
- ``_cqa_certain`` — a candidate is certain when every tree of the forest
  has a good (or satisfied) root block.

Soundness and completeness follow the standard argument: a fully-good root
block answers under any repair choice, and if no block is fully good an
adversarial repair picks one failing tuple per block, which is consistent
across the forest because the query is self-join-free.

NULL key values group like any other value (matching the enumeration
fallback and the brute-force oracle), so a source that lacks the key
attribute entirely melts into a single giant block — and the block-mate
join in ``bad`` is quadratic in block size. Such instances are degenerate
for CQA (their certain answers are near-vacuous anyway); prefer keys that
actually discriminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.cqa.query import ConjunctiveQuery, RewritePlan, Var
from repro.datalog.engine import query as run_query
from repro.datalog.program import Program
from repro.datalog.terms import Atom, Constant, Literal, Rule, Term, Variable

__all__ = [
    "RewriteError",
    "CompiledQuery",
    "compile_certain",
    "certain_answers",
    "naive_program",
    "naive_answers",
    "build_edb",
]


class RewriteError(ValueError):
    """Raised when a plan cannot be compiled against the given schemas."""


@dataclass(frozen=True)
class CompiledQuery:
    """A certain-answer datalog program with its goal atoms."""

    plan: RewritePlan
    program: Program
    goal: Atom
    candidate_goal: Atom

    @property
    def query(self) -> ConjunctiveQuery:
        """The source query."""
        return self.plan.query


def _to_term(term: Any) -> Term:
    return Variable(term.name) if isinstance(term, Var) else Constant(term)


class _NodeInfo:
    """Per-node compilation facts: patterns, key variables, interfaces."""

    def __init__(self, node, atom, attrs: Sequence[str], head: Sequence[str], fresh):
        bound = dict(atom.bindings)
        unknown = [a for a in bound if a not in attrs]
        if unknown:
            raise RewriteError(
                f"atom over {atom.relation!r} mentions unknown attributes {unknown}"
            )
        missing_keys = [a for a in node.key_attrs if a not in attrs]
        if missing_keys:
            raise RewriteError(
                f"key attributes {missing_keys} are not in the schema of"
                f" {atom.relation!r}"
            )
        self.node = node
        self.atom = atom
        self.attrs = list(attrs)
        self.pattern: list[Term] = []
        key_positions = set(node.key_attrs) if node.keyed else set()
        self.captured: list[tuple[int, Term]] = []
        term_by_attr: dict[str, Term] = {}
        for position, attribute in enumerate(attrs):
            if attribute in bound:
                term = _to_term(bound[attribute])
                if attribute not in key_positions:
                    self.captured.append((position, term))
            elif attribute in key_positions:
                term = Variable(fresh(f"CQA_K{node.index}_{position}"))
            else:
                term = Variable("_")
            self.pattern.append(term)
            term_by_attr[attribute] = term
        self.key_terms: list[Term] = [term_by_attr[a] for a in node.key_attrs]
        head_set = set(head)
        self.kvars: list[str] = []
        for term in self.key_terms:
            if isinstance(term, Variable) and term.name not in head_set:
                if term.name not in self.kvars:
                    self.kvars.append(term.name)
        self.invars: list[str] = []

    @property
    def anchor_args(self) -> list[str]:
        return self.kvars if self.node.keyed else self.invars

    def pattern_atom(self) -> Atom:
        return Atom(self.atom.relation, tuple(self.pattern))

    def key_scan_atom(self) -> Atom:
        """The atom with only key positions constrained (matches any tuple
        of the addressed blocks)."""
        key_positions = {
            position
            for position, attribute in enumerate(self.attrs)
            if attribute in set(self.node.key_attrs)
        }
        terms = [
            term if position in key_positions else Variable("_")
            for position, term in enumerate(self.pattern)
        ]
        return Atom(self.atom.relation, tuple(terms))


def _predicate(index: int | None, suffix: str) -> str:
    return f"_cqa_{suffix}" if index is None else f"_cqa_{index}_{suffix}"


def compile_certain(
    plan: RewritePlan, schemas: Mapping[str, Sequence[str]]
) -> CompiledQuery:
    """Compile a classified plan into its certain-answer program.

    ``schemas`` maps every relation of the query to its full attribute
    list in storage order (patterns must cover the whole row width).
    """
    query = plan.query
    head_vars = [Variable(name) for name in query.head]
    taken = set(query.variables()) | {"_"}

    def fresh(name: str) -> str:
        while name in taken:
            name += "_"
        taken.add(name)
        return name

    owners = dict(plan.owners)
    info: dict[int, _NodeInfo] = {}
    for node in plan.nodes:
        attrs = schemas.get(node.relation)
        if attrs is None:
            raise RewriteError(f"no schema for relation {node.relation!r}")
        entry = _NodeInfo(node, query.atoms[node.index], list(attrs), query.head, fresh)
        if not node.keyed and node.parent is not None:
            head_set = set(query.head)
            entry.invars = [
                v
                for v in entry.atom.variables()
                if v not in head_set and owners.get(v) == node.parent
            ]
        info[node.index] = entry

    all_patterns = [
        Literal(atom=info[i].pattern_atom()) for i in range(len(query.atoms))
    ]
    rules: list[Rule] = []

    def anchor_atom(index: int) -> Atom:
        entry = info[index]
        return Atom(
            _predicate(index, "anchor"),
            tuple(Variable(n) for n in entry.anchor_args) + tuple(head_vars),
        )

    def check_atom(index: int) -> Atom:
        """The child-check literal a parent uses: good for keyed children,
        sat for consistent ones."""
        entry = info[index]
        suffix = "good" if entry.node.keyed else "sat"
        return Atom(
            _predicate(index, suffix),
            tuple(Variable(n) for n in entry.anchor_args) + tuple(head_vars),
        )

    rules.append(
        Rule(Atom(_predicate(None, "cand"), tuple(head_vars)), list(all_patterns))
    )

    for node in plan.nodes:
        entry = info[node.index]
        if node.parent is None:
            rules.append(Rule(anchor_atom(node.index), list(all_patterns)))
        else:
            body = [
                Literal(atom=anchor_atom(node.parent)),
                Literal(atom=info[node.parent].pattern_atom()),
            ]
            if node.keyed:
                body.append(Literal(atom=entry.key_scan_atom()))
            rules.append(Rule(anchor_atom(node.index), body))

        child_checks = [Literal(atom=check_atom(child)) for child in node.children]
        if node.keyed:
            match_head = Atom(
                _predicate(node.index, "match"),
                tuple(Variable(n) for n in entry.kvars)
                + tuple(term for _position, term in entry.captured)
                + tuple(head_vars),
            )
            rules.append(
                Rule(
                    match_head,
                    [
                        Literal(atom=entry.pattern_atom()),
                        Literal(atom=anchor_atom(node.index)),
                    ]
                    + child_checks,
                )
            )
            row_vars = {
                position: Variable(fresh(f"CQA_W{node.index}_{position}"))
                for position, _term in entry.captured
            }
            scan_terms = list(entry.key_scan_atom().terms)
            for position, variable in row_vars.items():
                scan_terms[position] = variable
            match_lookup = Atom(
                _predicate(node.index, "match"),
                tuple(Variable(n) for n in entry.kvars)
                + tuple(row_vars[position] for position, _term in entry.captured)
                + tuple(head_vars),
            )
            bad_head = Atom(
                _predicate(node.index, "bad"),
                tuple(Variable(n) for n in entry.kvars) + tuple(head_vars),
            )
            rules.append(
                Rule(
                    bad_head,
                    [
                        Literal(atom=anchor_atom(node.index)),
                        Literal(atom=Atom(entry.atom.relation, tuple(scan_terms))),
                        Literal(atom=match_lookup, negated=True),
                    ],
                )
            )
            good_head = Atom(
                _predicate(node.index, "good"),
                tuple(Variable(n) for n in entry.kvars) + tuple(head_vars),
            )
            rules.append(
                Rule(
                    good_head,
                    [
                        Literal(atom=anchor_atom(node.index)),
                        Literal(atom=bad_head, negated=True),
                    ],
                )
            )
        else:
            sat_head = Atom(
                _predicate(node.index, "sat"),
                tuple(Variable(n) for n in entry.invars) + tuple(head_vars),
            )
            rules.append(
                Rule(
                    sat_head,
                    [
                        Literal(atom=entry.pattern_atom()),
                        Literal(atom=anchor_atom(node.index)),
                    ]
                    + child_checks,
                )
            )

    certain_body = [Literal(atom=Atom(_predicate(None, "cand"), tuple(head_vars)))]
    for root in plan.roots:
        root_head = Atom(_predicate(root.index, "root"), tuple(head_vars))
        rules.append(Rule(root_head, [Literal(atom=check_atom(root.index))]))
        certain_body.append(Literal(atom=root_head))
    goal = Atom(_predicate(None, "certain"), tuple(head_vars))
    rules.append(Rule(goal, certain_body))

    return CompiledQuery(
        plan=plan,
        program=Program(tuple(rules)),
        goal=goal,
        candidate_goal=Atom(_predicate(None, "cand"), tuple(head_vars)),
    )


# -- evaluation ----------------------------------------------------------------


def build_edb(tables: Mapping[str, Any]) -> dict[str, list[tuple]]:
    """Normalise a relation mapping (Table objects or row iterables) to an
    extensional database for the engine."""
    edb: dict[str, list[tuple]] = {}
    for name, table in tables.items():
        if hasattr(table, "tuples"):
            edb[name] = table.tuples()
        else:
            edb[name] = [tuple(row) for row in table]
    return edb


def certain_answers(compiled: CompiledQuery, tables: Mapping[str, Any]) -> list[tuple]:
    """Evaluate the compiled rewriting over the (dirty) ``tables``."""
    return run_query(compiled.program, compiled.goal, build_edb(tables))


def naive_program(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    *,
    head_vars: Sequence[str] | None = None,
) -> tuple[Program, Atom]:
    """The plain (repair-oblivious) evaluation program for ``query``.

    ``head_vars`` overrides the projection — repair enumeration uses the
    full witness width for boolean queries.
    """
    projected = tuple(query.head if head_vars is None else head_vars)
    if not projected:
        raise RewriteError("cannot build a zero-arity goal; project at least one variable")
    body: list[Literal] = []
    for atom in query.atoms:
        attrs = schemas.get(atom.relation)
        if attrs is None:
            raise RewriteError(f"no schema for relation {atom.relation!r}")
        bound = dict(atom.bindings)
        unknown = [a for a in bound if a not in attrs]
        if unknown:
            raise RewriteError(
                f"atom over {atom.relation!r} mentions unknown attributes {unknown}"
            )
        terms = tuple(
            _to_term(bound[a]) if a in bound else Variable("_") for a in attrs
        )
        body.append(Literal(atom=Atom(atom.relation, terms)))
    goal = Atom("_cqa_naive", tuple(Variable(name) for name in projected))
    return Program((Rule(goal, body),)), goal


def naive_answers(
    query: ConjunctiveQuery,
    schemas: Mapping[str, Sequence[str]],
    tables: Mapping[str, Any],
) -> list[tuple]:
    """Evaluate ``query`` directly over ``tables`` (no repair semantics)."""
    program, goal = naive_program(query, schemas)
    return run_query(program, goal, build_edb(tables))
