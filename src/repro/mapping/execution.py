"""Executing schema mappings against the catalog.

The executor materialises a :class:`~repro.mapping.model.SchemaMapping` into
a table in the target schema. Missing target attributes become NULL; every
output row carries two bookkeeping columns, ``_source`` (the contributing
source relation) and ``_row_id`` (``source:index``), which provide the
provenance needed for tuple/attribute-level feedback.

When the executor is given a :class:`~repro.provenance.model.ProvenanceStore`
it additionally records full why-provenance for every output tuple: the
witness (driving row plus any joined rows) and the shared
``attribute -> source relation`` map of the producing leaf mapping, so that
cell-level lineage can be derived without per-cell storage.
"""

from __future__ import annotations

from typing import Iterable

from repro.mapping.model import PROVENANCE_ROW_ID, PROVENANCE_SOURCE, SchemaMapping
from repro.provenance.model import OPERATOR_MAPPING, ProvenanceStore
from repro.relational.catalog import Catalog
from repro.relational.errors import TableNotFoundError
from repro.relational.keys import normalise_key
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, is_null

__all__ = ["MappingExecutor"]


class MappingExecutor:
    """Materialises mappings over a catalog of source tables."""

    def __init__(self, catalog: Catalog, *, provenance: ProvenanceStore | None = None):
        self._catalog = catalog
        self._provenance = provenance

    def execute(
        self,
        mapping: SchemaMapping,
        target_schema: Schema,
        *,
        result_name: str | None = None,
    ) -> Table:
        """Materialise ``mapping`` into a table named ``result_name``.

        The output schema is the target schema plus the two provenance
        columns; values are coerced to the target attribute types (coercion
        failures become NULL rather than aborting the wrangle). With a
        provenance store, each output tuple's lineage is recorded under the
        output relation (replacing any lineage from a previous
        materialisation).
        """
        name = result_name or f"{target_schema.name}__{mapping.mapping_id}"
        store = self._provenance
        if store is not None and not store.enabled:
            store = None
        if store is not None:
            store.clear_relation(name)
        coerced_rows = []
        for row, refs, leaf in self._rows_for(mapping, target_schema):
            coerced = []
            for attribute, value in zip(target_schema.attributes, row[:-2]):
                coerced.append(_coerce_or_null(value, attribute.dtype))
            coerced_rows.append((*coerced, row[-2], row[-1]))
            if store is not None:
                store.record_tuple(
                    name,
                    str(row[-1]),
                    operator=OPERATOR_MAPPING,
                    witnesses=(frozenset(refs),),
                    mapping_id=mapping.mapping_id,
                    cell_sources=self._cell_sources(leaf),
                )
        output_schema = self._output_schema(target_schema, name)
        return Table(output_schema, coerced_rows, coerce=False)

    # -- internals -----------------------------------------------------------

    def _output_schema(self, target_schema: Schema, name: str) -> Schema:
        attributes = list(target_schema.attributes)
        attributes.append(
            Attribute(
                PROVENANCE_SOURCE,
                DataType.STRING,
                description="provenance: contributing source relation",
            )
        )
        attributes.append(
            Attribute(
                PROVENANCE_ROW_ID,
                DataType.STRING,
                description="provenance: source row identifier",
            )
        )
        return Schema(name, attributes)

    def _cell_sources(self, leaf: SchemaMapping) -> dict[str, str]:
        """``target attribute -> source relation`` for one leaf mapping.

        Only assignments whose source attribute actually exists are kept —
        an attribute the mapping cannot populate has no contributing source
        (its cells are NULL constants with empty lineage).
        """
        cell_sources: dict[str, str] = {}
        for assignment in leaf.assignments:
            try:
                source = self._get(assignment.source_relation)
            except TableNotFoundError:
                continue
            if assignment.source_attribute in source.schema:
                cell_sources[assignment.target_attribute] = assignment.source_relation
        return cell_sources

    def _rows_for(self, mapping: SchemaMapping, target_schema: Schema) -> Iterable[tuple]:
        if mapping.kind == "union":
            for child in mapping.children:
                yield from self._rows_for(child, target_schema)
            return
        if mapping.kind == "direct":
            yield from self._direct_rows(mapping, target_schema)
            return
        yield from self._join_rows(mapping, target_schema)

    def _direct_rows(self, mapping: SchemaMapping, target_schema: Schema) -> Iterable[tuple]:
        source_name = mapping.sources[0]
        source = self._get(source_name)
        store = self._provenance
        positions = {}
        for assignment in mapping.assignments:
            if assignment.source_attribute in source.schema:
                positions[assignment.target_attribute] = source.schema.position(
                    assignment.source_attribute
                )
        for index, values in enumerate(source.tuples()):
            row = []
            for attribute in target_schema.attribute_names:
                position = positions.get(attribute)
                row.append(values[position] if position is not None else None)
            row_id = f"{source_name}:{index}"
            refs = (store.ref(source_name, row_id),) if store is not None else ()
            yield (*row, source_name, row_id), refs, mapping

    def _join_rows(self, mapping: SchemaMapping, target_schema: Schema) -> Iterable[tuple]:
        # Join the sources pairwise following the declared conditions. The
        # first source is the driving relation for provenance purposes.
        driving_name = mapping.sources[0]
        driving = self._get(driving_name)
        store = self._provenance
        # Build per-source indexes for the join conditions that involve the
        # driving relation; additional sources are joined via nested lookups.
        others = [name for name in mapping.sources[1:]]
        indexes: dict[str, dict] = {}
        join_keys: dict[str, tuple[str, str]] = {}
        for condition in mapping.join_conditions:
            if condition.left_relation == driving_name and condition.right_relation in others:
                other = condition.right_relation
                join_keys[other] = (condition.left_attribute, condition.right_attribute)
            elif condition.right_relation == driving_name and condition.left_relation in others:
                other = condition.left_relation
                join_keys[other] = (condition.right_attribute, condition.left_attribute)
        for other in others:
            table = self._get(other)
            driving_attr, other_attr = join_keys.get(other, (None, None))
            index: dict = {}
            if other_attr is not None and other_attr in table.schema:
                position = table.schema.position(other_attr)
                for other_index, values in enumerate(table.tuples()):
                    key = _join_key(values[position])
                    if key is not None:
                        index.setdefault(key, (other_index, values))
            indexes[other] = index

        assignments_by_source: dict[str, list] = {}
        for assignment in mapping.assignments:
            assignments_by_source.setdefault(assignment.source_relation, []).append(assignment)

        for row_index, driving_values in enumerate(driving.tuples()):
            row: dict[str, object] = {}
            for assignment in assignments_by_source.get(driving_name, ()):
                if assignment.source_attribute in driving.schema:
                    row[assignment.target_attribute] = driving_values[
                        driving.schema.position(assignment.source_attribute)
                    ]
            row_id = f"{driving_name}:{row_index}"
            refs = [store.ref(driving_name, row_id)] if store is not None else []
            for other in others:
                driving_attr, other_attr = join_keys.get(other, (None, None))
                other_table = self._get(other)
                matched = None
                if driving_attr is not None and driving_attr in driving.schema:
                    key = _join_key(driving_values[driving.schema.position(driving_attr)])
                    if key is not None:
                        matched = indexes[other].get(key)
                if matched is not None:
                    other_index, other_values = matched
                    if store is not None:
                        refs.append(store.ref(other, f"{other}:{other_index}"))
                    for assignment in assignments_by_source.get(other, ()):
                        if assignment.source_attribute in other_table.schema:
                            row[assignment.target_attribute] = other_values[
                                other_table.schema.position(assignment.source_attribute)
                            ]
            # Left-outer semantics: keep the driving row even when a joined
            # source has no partner, leaving its attributes NULL.
            output = [row.get(attribute) for attribute in target_schema.attribute_names]
            yield (*output, driving_name, row_id), tuple(refs), mapping

    def _get(self, name: str) -> Table:
        try:
            return self._catalog.get(name)
        except TableNotFoundError:
            raise TableNotFoundError(name) from None


def _coerce_or_null(value, dtype: DataType):
    if is_null(value):
        return None
    try:
        return coerce_value(value, dtype)
    except Exception:
        return None


def _join_key(value):
    return normalise_key(value)
