"""Executing schema mappings against the catalog.

The executor materialises a :class:`~repro.mapping.model.SchemaMapping` into
a table in the target schema. Missing target attributes become NULL; every
output row carries two bookkeeping columns, ``_source`` (the contributing
source relation) and ``_row_id`` (``source:index``), which provide the
provenance needed for tuple/attribute-level feedback.

When the executor is given a :class:`~repro.provenance.model.ProvenanceStore`
it additionally records full why-provenance for every output tuple: the
witness (driving row plus any joined rows) and the shared
``attribute -> source relation`` map of the producing leaf mapping, so that
cell-level lineage can be derived without per-cell storage.
"""

from __future__ import annotations

from typing import Iterable

from repro.mapping.model import PROVENANCE_ROW_ID, PROVENANCE_SOURCE, SchemaMapping
from repro.provenance.model import OPERATOR_MAPPING, ProvenanceStore
from repro.relational.catalog import Catalog
from repro.relational.errors import TableNotFoundError
from repro.relational.keys import normalise_key
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, is_null

__all__ = ["MappingExecutor"]


class MappingExecutor:
    """Materialises mappings over a catalog of source tables."""

    def __init__(self, catalog: Catalog, *, provenance: ProvenanceStore | None = None):
        self._catalog = catalog
        self._provenance = provenance

    def execute(
        self,
        mapping: SchemaMapping,
        target_schema: Schema,
        *,
        result_name: str | None = None,
    ) -> Table:
        """Materialise ``mapping`` into a table named ``result_name``.

        The output schema is the target schema plus the two provenance
        columns; values are coerced to the target attribute types (coercion
        failures become NULL rather than aborting the wrangle). With a
        provenance store, each output tuple's lineage is recorded under the
        output relation (replacing any lineage from a previous
        materialisation).
        """
        name = result_name or f"{target_schema.name}__{mapping.mapping_id}"
        store = self._provenance
        if store is not None and not store.enabled:
            store = None
        if store is not None:
            store.clear_relation(name)
        coerced_rows = []
        for row, refs, leaf in self._rows_for(mapping, target_schema):
            coerced_rows.append(self._emit(name, row, refs, leaf, mapping, target_schema, store))
        output_schema = self._output_schema(target_schema, name)
        return Table(output_schema, coerced_rows, coerce=False)

    def execute_rows(
        self,
        mapping: SchemaMapping,
        target_schema: Schema,
        *,
        driving: "dict[str, Iterable[int]]",
        result_name: str,
    ) -> list[tuple[str, tuple]]:
        """Materialise only the given driving rows of ``mapping``.

        ``driving`` maps driving source relations to the positional indexes
        of the rows to (re-)execute. Returns ``(row key, output row)`` pairs
        in leaf/driving order — exactly the rows a full :meth:`execute`
        would produce for those positions, including join lookups and type
        coercion. Lineage for each produced tuple is recorded under
        ``result_name``, replacing any previous annotation of that key (this
        is the delta path of incremental re-wrangling; it must not clear the
        rest of the relation's lineage the way a full execute does).
        """
        store = self._provenance
        if store is not None and not store.enabled:
            store = None
        produced: list[tuple[str, tuple]] = []
        for leaf in self._leaves(mapping):
            wanted = driving.get(leaf.sources[0])
            if not wanted:
                continue
            source = self._get(leaf.sources[0])
            tuples = source.tuples()
            items = [
                (index, tuples[index])
                for index in sorted(set(wanted))
                if 0 <= index < len(tuples)
            ]
            if leaf.kind == "direct":
                generated = self._direct_rows(leaf, target_schema, items=items)
            else:
                generated = self._join_rows(leaf, target_schema, items=items)
            for row, refs, produced_leaf in generated:
                emitted = self._emit(
                    result_name, row, refs, produced_leaf, mapping, target_schema, store
                )
                produced.append((str(row[-1]), emitted))
        return produced

    # -- internals -----------------------------------------------------------

    def _emit(self, name, row, refs, leaf, mapping, target_schema, store) -> tuple:
        """Coerce one generated row and record its lineage."""
        coerced = []
        for attribute, value in zip(target_schema.attributes, row[:-2]):
            coerced.append(_coerce_or_null(value, attribute.dtype))
        if store is not None:
            store.record_tuple(
                name,
                str(row[-1]),
                operator=OPERATOR_MAPPING,
                witnesses=(frozenset(refs),),
                mapping_id=mapping.mapping_id,
                cell_sources=self._cell_sources(leaf),
            )
        return (*coerced, row[-2], row[-1])

    def _leaves(self, mapping: SchemaMapping) -> list[SchemaMapping]:
        """Leaf (direct/join) mappings in materialisation order."""
        if mapping.kind == "union":
            leaves: list[SchemaMapping] = []
            for child in mapping.children:
                leaves.extend(self._leaves(child))
            return leaves
        return [mapping]

    def _output_schema(self, target_schema: Schema, name: str) -> Schema:
        attributes = list(target_schema.attributes)
        attributes.append(
            Attribute(
                PROVENANCE_SOURCE,
                DataType.STRING,
                description="provenance: contributing source relation",
            )
        )
        attributes.append(
            Attribute(
                PROVENANCE_ROW_ID,
                DataType.STRING,
                description="provenance: source row identifier",
            )
        )
        return Schema(name, attributes)

    def _cell_sources(self, leaf: SchemaMapping) -> dict[str, str]:
        """``target attribute -> source relation`` for one leaf mapping.

        Only assignments whose source attribute actually exists are kept —
        an attribute the mapping cannot populate has no contributing source
        (its cells are NULL constants with empty lineage).
        """
        cell_sources: dict[str, str] = {}
        for assignment in leaf.assignments:
            try:
                source = self._get(assignment.source_relation)
            except TableNotFoundError:
                continue
            if assignment.source_attribute in source.schema:
                cell_sources[assignment.target_attribute] = assignment.source_relation
        return cell_sources

    def _rows_for(self, mapping: SchemaMapping, target_schema: Schema) -> Iterable[tuple]:
        if mapping.kind == "union":
            for child in mapping.children:
                yield from self._rows_for(child, target_schema)
            return
        if mapping.kind == "direct":
            yield from self._direct_rows(mapping, target_schema)
            return
        yield from self._join_rows(mapping, target_schema)

    def _direct_rows(
        self,
        mapping: SchemaMapping,
        target_schema: Schema,
        items: Iterable[tuple[int, tuple]] | None = None,
    ) -> Iterable[tuple]:
        source_name = mapping.sources[0]
        source = self._get(source_name)
        store = self._provenance
        positions = {}
        for assignment in mapping.assignments:
            if assignment.source_attribute in source.schema:
                positions[assignment.target_attribute] = source.schema.position(
                    assignment.source_attribute
                )
        if items is None:
            items = enumerate(source.tuples())
        for index, values in items:
            row = []
            for attribute in target_schema.attribute_names:
                position = positions.get(attribute)
                row.append(values[position] if position is not None else None)
            row_id = f"{source_name}:{index}"
            refs = (store.ref(source_name, row_id),) if store is not None else ()
            yield (*row, source_name, row_id), refs, mapping

    def _join_rows(
        self,
        mapping: SchemaMapping,
        target_schema: Schema,
        items: Iterable[tuple[int, tuple]] | None = None,
    ) -> Iterable[tuple]:
        # Join the sources pairwise following the declared conditions. The
        # first source is the driving relation for provenance purposes.
        driving_name = mapping.sources[0]
        driving = self._get(driving_name)
        store = self._provenance
        # Build per-source indexes for the join conditions that involve the
        # driving relation; additional sources are joined via nested lookups.
        others = [name for name in mapping.sources[1:]]
        indexes: dict[str, dict] = {}
        join_keys: dict[str, tuple[str, str]] = {}
        for condition in mapping.join_conditions:
            if condition.left_relation == driving_name and condition.right_relation in others:
                other = condition.right_relation
                join_keys[other] = (condition.left_attribute, condition.right_attribute)
            elif condition.right_relation == driving_name and condition.left_relation in others:
                other = condition.left_relation
                join_keys[other] = (condition.right_attribute, condition.left_attribute)
        for other in others:
            table = self._get(other)
            driving_attr, other_attr = join_keys.get(other, (None, None))
            index: dict = {}
            if other_attr is not None and other_attr in table.schema:
                position = table.schema.position(other_attr)
                for other_index, values in enumerate(table.tuples()):
                    key = _join_key(values[position])
                    if key is not None:
                        index.setdefault(key, (other_index, values))
            indexes[other] = index

        assignments_by_source: dict[str, list] = {}
        for assignment in mapping.assignments:
            assignments_by_source.setdefault(assignment.source_relation, []).append(assignment)

        if items is None:
            items = enumerate(driving.tuples())
        for row_index, driving_values in items:
            row: dict[str, object] = {}
            for assignment in assignments_by_source.get(driving_name, ()):
                if assignment.source_attribute in driving.schema:
                    row[assignment.target_attribute] = driving_values[
                        driving.schema.position(assignment.source_attribute)
                    ]
            row_id = f"{driving_name}:{row_index}"
            refs = [store.ref(driving_name, row_id)] if store is not None else []
            for other in others:
                driving_attr, other_attr = join_keys.get(other, (None, None))
                other_table = self._get(other)
                matched = None
                if driving_attr is not None and driving_attr in driving.schema:
                    key = _join_key(driving_values[driving.schema.position(driving_attr)])
                    if key is not None:
                        matched = indexes[other].get(key)
                if matched is not None:
                    other_index, other_values = matched
                    if store is not None:
                        refs.append(store.ref(other, f"{other}:{other_index}"))
                    for assignment in assignments_by_source.get(other, ()):
                        if assignment.source_attribute in other_table.schema:
                            row[assignment.target_attribute] = other_values[
                                other_table.schema.position(assignment.source_attribute)
                            ]
            # Left-outer semantics: keep the driving row even when a joined
            # source has no partner, leaving its attributes NULL.
            output = [row.get(attribute) for attribute in target_schema.attribute_names]
            yield (*output, driving_name, row_id), tuple(refs), mapping

    def _get(self, name: str) -> Table:
        try:
            return self._catalog.get(name)
        except TableNotFoundError:
            raise TableNotFoundError(name) from None


def _coerce_or_null(value, dtype: DataType):
    if is_null(value):
        return None
    try:
        return coerce_value(value, dtype)
    except Exception:
        return None


def _join_key(value):
    return normalise_key(value)
