"""Mapping generation: deriving candidate mappings from correspondences.

Table 1: "Mapping Generation — Src/Target Schemas" (plus the matches between
them). The generator proposes:

1. a *direct* mapping per source relation that has any correspondence;
2. *join* mappings for pairs of sources whose matched attributes overlap in
   value (discovered via inclusion-dependency profiling) and whose target
   coverage is complementary — in the scenario this is what combines the
   property sources with the Deprivation table on ``postcode``;
3. *union* mappings over groups of mappings covering similar target
   attributes — in the scenario, the union of Rightmove and Onthemarket
   (optionally each joined with Deprivation).

The candidate set is deliberately over-complete: choosing among the
candidates is mapping *selection*'s job, driven by quality metrics and the
user context.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.matching.correspondence import MatchSet
from repro.mapping.model import AttributeAssignment, JoinCondition, SchemaMapping
from repro.quality.profiling import value_overlap
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema

__all__ = ["MappingGeneratorConfig", "MappingGenerator"]


@dataclass(frozen=True)
class MappingGeneratorConfig:
    """Tuning knobs of the mapping generator."""

    #: Correspondences below this score do not induce assignments.
    match_threshold: float = 0.5
    #: Minimum value-overlap for a join key candidate.
    join_overlap_threshold: float = 0.5
    #: Maximum number of generated candidates (defensive cap).
    max_candidates: int = 40


class MappingGenerator:
    """Generates candidate mappings from the current matches."""

    def __init__(self, config: MappingGeneratorConfig | None = None):
        self._config = config or MappingGeneratorConfig()

    @property
    def config(self) -> MappingGeneratorConfig:
        """The generator configuration."""
        return self._config

    def generate(
        self,
        matches: MatchSet,
        target_schema: Schema,
        catalog: Catalog,
        *,
        sources: Sequence[str] | None = None,
    ) -> list[SchemaMapping]:
        """All candidate mappings for ``target_schema`` given ``matches``."""
        config = self._config
        usable = matches.above(config.match_threshold).for_target(target_schema.name)
        source_names = list(sources) if sources is not None else usable.source_relations()
        source_names = [name for name in source_names if name in catalog]

        direct = self._direct_mappings(usable, target_schema, source_names)
        joins = self._join_mappings(usable, target_schema, catalog, direct)
        unions = self._union_mappings(target_schema, direct, joins)
        candidates = [*direct, *joins, *unions]
        return candidates[: config.max_candidates]

    # -- direct ------------------------------------------------------------------

    def _direct_mappings(
        self, matches: MatchSet, target_schema: Schema, source_names: Sequence[str]
    ) -> list[SchemaMapping]:
        mappings = []
        for index, source_name in enumerate(sorted(source_names), start=1):
            best = matches.best_per_target_attribute(source_name, target_schema.name)
            if not best:
                continue
            assignments = tuple(
                sorted(
                    AttributeAssignment(
                        target_attribute=attr,
                        source_relation=source_name,
                        source_attribute=correspondence.source_attribute,
                        score=correspondence.score,
                    )
                    for attr, correspondence in best.items()
                )
            )
            mappings.append(
                SchemaMapping(
                    mapping_id=f"m_direct_{source_name}",
                    target_relation=target_schema.name,
                    kind="direct",
                    sources=(source_name,),
                    assignments=assignments,
                )
            )
        return mappings

    # -- joins ------------------------------------------------------------------------

    def _join_mappings(
        self,
        matches: MatchSet,
        target_schema: Schema,
        catalog: Catalog,
        direct: list[SchemaMapping],
    ) -> list[SchemaMapping]:
        joins = []
        by_source = {mapping.sources[0]: mapping for mapping in direct}
        for left_name, right_name in combinations(sorted(by_source), 2):
            left_mapping = by_source[left_name]
            right_mapping = by_source[right_name]
            left_coverage = left_mapping.covered_attributes()
            right_coverage = right_mapping.covered_attributes()
            # A join is only interesting when it extends coverage.
            if right_coverage <= left_coverage and left_coverage <= right_coverage:
                continue
            join_key = self._find_join_key(left_mapping, right_mapping, catalog)
            if join_key is None:
                continue
            left_attr, right_attr = join_key
            driving, other = left_mapping, right_mapping
            driving_attr, other_attr = left_attr, right_attr
            # Prefer the source with the larger coverage as the driving side.
            if len(right_coverage) > len(left_coverage):
                driving, other = right_mapping, left_mapping
                driving_attr, other_attr = right_attr, left_attr
            assignments = dict()
            for assignment in driving.assignments:
                assignments[assignment.target_attribute] = assignment
            for assignment in other.assignments:
                assignments.setdefault(assignment.target_attribute, assignment)
            joins.append(
                SchemaMapping(
                    mapping_id=f"m_join_{driving.sources[0]}_{other.sources[0]}",
                    target_relation=target_schema.name,
                    kind="join",
                    sources=(driving.sources[0], other.sources[0]),
                    assignments=tuple(sorted(assignments.values())),
                    join_conditions=(
                        JoinCondition(
                            driving.sources[0], driving_attr, other.sources[0], other_attr
                        ),
                    ),
                )
            )
        return joins

    def _find_join_key(
        self, left: SchemaMapping, right: SchemaMapping, catalog: Catalog
    ) -> tuple[str, str] | None:
        """The best join-key pair between two direct mappings' sources.

        Candidate keys are pairs of source attributes matched to the *same*
        target attribute; the pair with the highest value overlap above the
        threshold wins.
        """
        config = self._config
        left_table = catalog.get(left.sources[0])
        right_table = catalog.get(right.sources[0])
        best: tuple[float, str, str] | None = None
        shared_targets = left.covered_attributes() & right.covered_attributes()
        for target_attribute in sorted(shared_targets):
            left_assignment = left.assignment_for(target_attribute)
            right_assignment = right.assignment_for(target_attribute)
            if left_assignment is None or right_assignment is None:
                continue
            if (
                left_assignment.source_attribute not in left_table.schema
                or right_assignment.source_attribute not in right_table.schema
            ):
                continue
            overlap = value_overlap(
                left_table,
                left_assignment.source_attribute,
                right_table,
                right_assignment.source_attribute,
            )
            if overlap < config.join_overlap_threshold:
                continue
            if best is None or overlap > best[0]:
                best = (
                    overlap,
                    left_assignment.source_attribute,
                    right_assignment.source_attribute,
                )
        if best is None:
            return None
        return best[1], best[2]

    # -- unions --------------------------------------------------------------------------

    def _union_mappings(
        self, target_schema: Schema, direct: list[SchemaMapping], joins: list[SchemaMapping]
    ) -> list[SchemaMapping]:
        unions = []
        # Union of all direct mappings covering more than one source.
        if len(direct) >= 2:
            unions.append(
                SchemaMapping(
                    mapping_id="m_union_direct",
                    target_relation=target_schema.name,
                    kind="union",
                    children=tuple(direct),
                )
            )
        # Union of join mappings that share the same joined-in source (e.g.
        # Rightmove⋈Deprivation ∪ Onthemarket⋈Deprivation).
        if len(joins) >= 2:
            by_other: dict[str, list[SchemaMapping]] = {}
            for mapping in joins:
                other = mapping.sources[1]
                by_other.setdefault(other, []).append(mapping)
            for other, group in sorted(by_other.items()):
                if len(group) >= 2:
                    unions.append(
                        SchemaMapping(
                            mapping_id=f"m_union_join_{other}",
                            target_relation=target_schema.name,
                            kind="union",
                            children=tuple(group),
                        )
                    )
        # Mixed unions: every direct mapping unioned with every join that
        # does not already include its source — captures "one source has the
        # extra attribute, the other does not".
        for direct_mapping in direct:
            for join_mapping in joins:
                if direct_mapping.sources[0] in join_mapping.all_sources():
                    continue
                unions.append(
                    SchemaMapping(
                        mapping_id=(
                            f"m_union_{direct_mapping.sources[0]}_"
                            f"{join_mapping.mapping_id.removeprefix('m_join_')}"
                        ),
                        target_relation=target_schema.name,
                        kind="union",
                        children=(direct_mapping, join_mapping),
                    )
                )
        return unions
