"""Mapping transducers: generation, scoring, selection and materialisation.

Together with the matching and quality transducers these reproduce the
mapping-related rows of Table 1 and the behaviour described in §2.3: once
matches exist mapping generation can run; once quality metrics exist on the
candidate mappings, mapping (and source) selection can run, taking the user
context into account.
"""

from __future__ import annotations

from repro.core.facts import (
    Predicates,
    mapping_fact,
    mapping_score_fact,
    mapping_selected_fact,
    result_fact,
    source_selected_fact,
)
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.incremental.state import incremental_state, mapping_source_volumes
from repro.matching.correspondence import MatchSet
from repro.mapping.execution import MappingExecutor
from repro.mapping.generation import MappingGenerator, MappingGeneratorConfig
from repro.mapping.model import SchemaMapping
from repro.mapping.selection import MappingScorer, MappingSelector
from repro.provenance.feedback import LINEAGE_PENALTIES_ARTIFACT_KEY
from repro.provenance.model import provenance_store
from repro.quality.transducers import CFD_ARTIFACT_KEY
from repro.relational.table import Table

__all__ = [
    "MAPPINGS_ARTIFACT_KEY",
    "FEEDBACK_PENALTIES_ARTIFACT_KEY",
    "MappingGenerationTransducer",
    "MappingQualityTransducer",
    "SourceSelectionTransducer",
    "MappingSelectionTransducer",
    "ResultMaterialisationTransducer",
    "result_relation_name",
]

#: Artifact key for the dictionary of candidate mappings (id → SchemaMapping).
MAPPINGS_ARTIFACT_KEY = "candidate_mappings"
#: Artifact key for feedback-derived error rates per (source, target attribute).
FEEDBACK_PENALTIES_ARTIFACT_KEY = "feedback_penalties"
#: Artifact key for the cached penalty-free base scores of candidate mappings
#: ({"context_key": ..., "bases": {target_relation: {mapping_id: base}}}).
#: Feedback-driven re-scores reuse these instead of re-materialising every
#: candidate; the entry is dropped whenever the scoring context changes.
BASE_SCORES_ARTIFACT_KEY = "mapping_base_scores"


def result_relation_name(target_relation: str) -> str:
    """Canonical name of the materialised result table for a target relation."""
    return f"{target_relation}_result"


class MappingGenerationTransducer(Transducer):
    """Generates candidate mappings from the current ``match`` facts."""

    name = "mapping_generation"
    activity = Activity.MAPPING
    priority = 10
    input_dependencies = (
        "match(S, A, T, B, Sc)",
        "schema(T, target)",
    )

    def __init__(self, config: MappingGeneratorConfig | None = None):
        super().__init__()
        self._generator = MappingGenerator(config)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        candidates: dict[str, SchemaMapping] = {}
        added = 0
        for target_relation in kb.target_relations():
            matches = MatchSet.from_kb(kb, target_relation=target_relation)
            target_schema = kb.schema_of(target_relation)
            generated = self._generator.generate(
                matches, target_schema, kb.catalog, sources=kb.source_relations()
            )
            for mapping in generated:
                candidates[mapping.mapping_id] = mapping
        # Replace the previous candidate set: mappings are derived facts.
        kb.retract_where(Predicates.MAPPING)
        kb.store_artifact(MAPPINGS_ARTIFACT_KEY, candidates)
        for mapping in candidates.values():
            added += int(
                kb.assert_tuple(
                    mapping_fact(mapping.mapping_id, mapping.target_relation, mapping.kind)
                )
            )
        return TransducerResult(
            facts_added=added,
            notes=f"generated {len(candidates)} candidate mappings",
            details={"candidates": [m.describe() for m in candidates.values()]},
        )


class MappingQualityTransducer(Transducer):
    """Scores every candidate mapping on the quality criteria.

    This is the "Quality Metric transducer … adding quality metrics on
    sources and mappings to the knowledge base" of §2.3, restricted to
    mappings (source metrics are handled by
    :class:`repro.quality.QualityMetricTransducer`). It uses whatever data
    context is available: reference data for accuracy, learned CFDs for
    consistency, master data for relevance, and feedback-derived penalties.
    """

    name = "mapping_quality"
    activity = Activity.QUALITY
    priority = 30
    input_dependencies = ("mapping(M, T, K)",)
    watch_predicates = ("cfd", "data_context", "feedback", "criterion_weight", "dataset")

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        candidates: dict[str, SchemaMapping] = kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {})
        if not candidates:
            return TransducerResult(notes="no candidate mappings to score")
        added = 0
        scored = 0
        base_cache = self._base_cache(kb)
        kb.retract_where(Predicates.MAPPING_SCORE)
        for target_relation in kb.target_relations():
            target_schema = kb.schema_of(target_relation)
            scorer = self._build_scorer(kb, target_relation, target_schema)
            relevant = [m for m in candidates.values() if m.target_relation == target_relation]
            relation_cache = base_cache["bases"].setdefault(target_relation, {})
            for mapping_id, score in scorer.score_all(
                relevant, base_cache=relation_cache
            ).items():
                scored += 1
                for criterion, value in score.criteria.items():
                    added += int(kb.assert_tuple(mapping_score_fact(mapping_id, criterion, value)))
                added += int(
                    kb.assert_tuple(
                        mapping_score_fact(mapping_id, "match_confidence", score.match_confidence)
                    )
                )
        return TransducerResult(
            facts_added=added,
            notes=f"scored {scored} candidate mappings",
        )

    def _base_cache(self, kb: KnowledgeBase) -> dict:
        """The session's base-score cache, invalidated on context changes.

        Base scores depend on the source tables, the data context, the
        learned CFDs and the completeness weights — but *not* on feedback.
        The context key tracks the revisions of exactly those inputs (source
        volumes stand in for source contents: sources are logically
        immutable apart from explicit row additions/removals, which change
        their row counts), so feedback-only re-scores hit the cache while
        any context change rebuilds it.
        """
        sources = tuple(
            sorted(row for row in kb.facts(Predicates.DATASET) if row[1] == Predicates.ROLE_SOURCE)
        )
        context_key = (
            kb.predicate_revision(Predicates.CFD),
            kb.predicate_revision(Predicates.DATA_CONTEXT),
            kb.predicate_revision(Predicates.CRITERION_WEIGHT),
            sources,
        )
        cache = kb.get_artifact(BASE_SCORES_ARTIFACT_KEY)
        if cache is None or cache.get("context_key") != context_key:
            cache = {"context_key": context_key, "bases": {}}
            kb.store_artifact(BASE_SCORES_ARTIFACT_KEY, cache)
        return cache

    def _build_scorer(
        self, kb: KnowledgeBase, target_relation: str, target_schema
    ) -> MappingScorer:
        reference, reference_key = _context_table(kb, Predicates.CONTEXT_REFERENCE, target_relation)
        master, master_key = _context_table(kb, Predicates.CONTEXT_MASTER, target_relation)
        return MappingScorer(
            kb.catalog,
            target_schema,
            reference=reference,
            reference_key=reference_key,
            master=master,
            master_key=master_key,
            learned_cfds=kb.get_artifact(CFD_ARTIFACT_KEY),
            feedback_penalties=kb.get_artifact(FEEDBACK_PENALTIES_ARTIFACT_KEY, {}),
            mapping_penalties=kb.get_artifact(LINEAGE_PENALTIES_ARTIFACT_KEY, {}),
            completeness_weights=_completeness_weights(kb),
            base_table_provider=_snapshot_base_table_provider(kb),
        )


def _snapshot_base_table_provider(kb: KnowledgeBase):
    """Serve the selected mapping's materialised rows from the pipeline snapshot.

    The incremental state's ``base`` rows are exactly what a fresh
    :meth:`MappingExecutor.execute` of the snapshot's mapping would produce
    — *while* the sources still have the row counts they had at
    materialisation time and the candidate's structure (score-free
    signature) is unchanged. Inside that window, a base-score refresh (a new
    data context, refreshed CFDs) re-evaluates the winner from the snapshot
    instead of re-running its joins; everything outside the window falls
    back to a real execution. Returns None when the session does not track
    incremental state.
    """
    state = incremental_state(kb, create=False)
    if state is None or not state.enabled:
        return None

    def provider(mapping) -> Table | None:
        rel_state = state.get(result_relation_name(mapping.target_relation))
        if rel_state is None or not rel_state.ready:
            return None
        if rel_state.mapping_id != mapping.mapping_id or rel_state.mapping is None:
            return None
        if not rel_state.source_volumes:
            return None
        if rel_state.source_volumes != mapping_source_volumes(kb.catalog, rel_state.mapping):
            return None
        if rel_state.mapping.structure_signature() != mapping.structure_signature():
            return None
        rows = []
        for key in rel_state.order:
            row = rel_state.base.get(key)
            if row is None:
                return None  # snapshot incomplete: execute for real
            rows.append(row)
        return Table(rel_state.schema, rows, coerce=False, validate=False)

    return provider


class SourceSelectionTransducer(Transducer):
    """Ranks sources by their weighted quality metrics.

    §2.3: quality metrics on sources "allow a source selection … transducer
    to run that selects sources …, taking into account the user context".
    """

    name = "source_selection"
    activity = Activity.SELECTION
    priority = 20
    input_dependencies = ("metric(source, S, C, V)",)
    watch_predicates = ("criterion_weight",)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        weights = _criterion_weights(kb)
        per_source: dict[str, dict[str, float]] = {}
        for subject_kind, subject, criterion, value in kb.facts(Predicates.METRIC):
            if subject_kind != Predicates.ROLE_SOURCE:
                continue
            per_source.setdefault(subject, {})[criterion] = float(value)
        ranking = []
        for source, criteria in per_source.items():
            if weights:
                total = sum(weights.get(name, 0.0) for name in criteria)
                if total > 0:
                    score = (
                        sum(value * weights.get(name, 0.0) for name, value in criteria.items())
                        / total
                    )
                else:
                    score = 0.0
            else:
                score = sum(criteria.values()) / len(criteria)
            ranking.append((source, score))
        ranking.sort(key=lambda item: (-item[1], item[0]))
        kb.retract_where(Predicates.SOURCE_SELECTED)
        added = 0
        for rank, (source, _score) in enumerate(ranking, start=1):
            added += int(kb.assert_tuple(source_selected_fact(source, rank)))
        return TransducerResult(
            facts_added=added,
            notes=f"ranked {len(ranking)} sources",
            details={"ranking": ranking},
        )


class MappingSelectionTransducer(Transducer):
    """Selects the best candidate mapping using the user-context weights."""

    name = "mapping_selection"
    activity = Activity.SELECTION
    priority = 30
    input_dependencies = ("mapping_score(M, C, V)",)
    watch_predicates = ("criterion_weight",)

    def __init__(self) -> None:
        super().__init__()
        self._selector = MappingSelector()

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        from repro.mapping.selection import MappingScore

        weights = _criterion_weights(kb)
        scores: dict[str, MappingScore] = {}
        confidences: dict[str, float] = {}
        for mapping_id, criterion, value in kb.facts(Predicates.MAPPING_SCORE):
            if criterion == "match_confidence":
                confidences[mapping_id] = float(value)
                continue
            entry = scores.setdefault(mapping_id, MappingScore(mapping_id, {}))
            entry.criteria[criterion] = float(value)
        for mapping_id, confidence in confidences.items():
            if mapping_id in scores:
                scores[mapping_id].match_confidence = confidence
        if not scores:
            return TransducerResult(notes="no mapping scores available")
        outcome = self._selector.select(scores, weights)
        kb.retract_where(Predicates.MAPPING_SELECTED)
        added = 0
        for rank, (mapping_id, _score) in enumerate(outcome.ranking, start=1):
            added += int(kb.assert_tuple(mapping_selected_fact(mapping_id, rank)))
        return TransducerResult(
            facts_added=added,
            notes=(
                f"selected {outcome.best_mapping_id} "
                f"(score {outcome.best_score:.3f}, weights={'user' if weights else 'uniform'})"
            ),
            details={"ranking": outcome.ranking, "weights": weights},
        )


class ResultMaterialisationTransducer(Transducer):
    """Materialises the selected mapping into the result table."""

    name = "result_materialisation"
    activity = Activity.SELECTION
    priority = 40
    input_dependencies = ("mapping_selected(M, 1)",)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        candidates: dict[str, SchemaMapping] = kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {})
        selected_id = None
        for mapping_id, rank in kb.facts(Predicates.MAPPING_SELECTED):
            if rank == 1:
                selected_id = mapping_id
                break
        if selected_id is None or selected_id not in candidates:
            return TransducerResult(notes="no selected mapping to materialise")
        mapping = candidates[selected_id]
        target_schema = kb.schema_of(mapping.target_relation)
        executor = MappingExecutor(kb.catalog, provenance=provenance_store(kb))
        result_name = result_relation_name(mapping.target_relation)
        table = executor.execute(mapping, target_schema, result_name=result_name)
        if kb.has_table(result_name):
            kb.update_table(table)
        else:
            kb.catalog.register(table, replace=True)
        state = incremental_state(kb, create=False)
        if state is not None:
            state.observe_materialised(
                table, mapping, provenance_store(kb, create=False), catalog=kb.catalog
            )
        # Refresh the result fact (retract results for this target first).
        for row in list(kb.facts(Predicates.RESULT)):
            if row[0] == result_name:
                kb.retract_fact(Predicates.RESULT, *row)
        added = int(kb.assert_tuple(result_fact(result_name, selected_id, len(table))))
        return TransducerResult(
            facts_added=added,
            tables_written=[result_name],
            notes=f"materialised {selected_id} into {result_name} ({len(table)} rows)",
            details={"mapping": mapping.describe(), "rows": len(table)},
        )


# -- shared helpers ------------------------------------------------------------------


def _criterion_weights(kb: KnowledgeBase) -> dict[str, float]:
    """Dimension-level weights from ``criterion_weight`` facts (may be empty)."""
    aggregated: dict[str, float] = {}
    for key, weight in kb.facts(Predicates.CRITERION_WEIGHT):
        dimension = key.split(".", 1)[0]
        aggregated[dimension] = aggregated.get(dimension, 0.0) + float(weight)
    total = sum(aggregated.values())
    if total <= 0:
        return {}
    return {dimension: weight / total for dimension, weight in aggregated.items()}


def _completeness_weights(kb: KnowledgeBase) -> dict[str, float]:
    """Attribute-level completeness weights from the user context (may be empty)."""
    weights: dict[str, float] = {}
    for key, weight in kb.facts(Predicates.CRITERION_WEIGHT):
        if "." not in key:
            continue
        dimension, attribute = key.split(".", 1)
        if dimension == "completeness":
            weights[attribute] = weights.get(attribute, 0.0) + float(weight)
    return weights


def _context_table(kb: KnowledgeBase, kind: str, target_relation: str):
    """The first data-context table of ``kind`` for ``target_relation`` plus a key.

    Reference data is joined on an identifying attribute (a postcode-like
    attribute when one exists) so the *other* shared attributes can be
    checked for accuracy. Master data instead describes whole entities, so
    all shared attributes together form the coverage key for relevance.
    """
    for context_name, context_kind, bound_target in kb.facts(Predicates.DATA_CONTEXT):
        if context_kind != kind or bound_target != target_relation:
            continue
        if not kb.has_table(context_name):
            continue
        table = kb.get_table(context_name)
        target_schema = kb.schema_of(target_relation)
        shared = [name for name in table.schema.attribute_names if name in target_schema]
        if not shared:
            continue
        if kind == Predicates.CONTEXT_MASTER:
            key = shared
        else:
            key = [name for name in shared if "postcode" in name.lower()] or shared[:1]
        return table, key
    return None, []
