"""Schema mappings: how source data populates the target schema.

A :class:`SchemaMapping` describes one way of producing the target relation
from the registered sources. Three kinds are supported, mirroring the
structures mapping generation discovers in the scenario:

- ``direct`` — project/rename one source onto the target schema;
- ``join`` — equi-join two (or more) sources, then project onto the target;
- ``union`` — union the results of child mappings (padding missing target
  attributes with NULL).

Mappings can also be rendered as Vadalog-lite rules (the paper represents
schema mappings in Vadalog), which keeps the architecture's "everything is
expressible in the reasoner's language" story intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.table import ROW_KEY_ATTRIBUTE

__all__ = ["AttributeAssignment", "JoinCondition", "SchemaMapping"]

#: Bookkeeping columns added by mapping execution. The row-id column doubles
#: as the pipeline-wide stable row identity (see ``ROW_KEY_ATTRIBUTE``).
PROVENANCE_SOURCE = "_source"
PROVENANCE_ROW_ID = ROW_KEY_ATTRIBUTE


@dataclass(frozen=True, order=True)
class AttributeAssignment:
    """``target_attribute`` is populated from ``source_relation.source_attribute``."""

    target_attribute: str
    source_relation: str
    source_attribute: str
    #: Confidence inherited from the correspondence that induced the assignment.
    score: float = 1.0

    def __str__(self) -> str:
        return (
            f"{self.target_attribute} <- "
            f"{self.source_relation}.{self.source_attribute} ({self.score:.2f})"
        )


@dataclass(frozen=True, order=True)
class JoinCondition:
    """Equi-join condition between two source relations."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    def __str__(self) -> str:
        return (
            f"{self.left_relation}.{self.left_attribute} = "
            f"{self.right_relation}.{self.right_attribute}"
        )


@dataclass(frozen=True)
class SchemaMapping:
    """One candidate mapping from sources to the target relation."""

    mapping_id: str
    target_relation: str
    kind: str
    sources: tuple[str, ...] = ()
    assignments: tuple[AttributeAssignment, ...] = ()
    join_conditions: tuple[JoinCondition, ...] = ()
    children: tuple["SchemaMapping", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("direct", "join", "union"):
            raise ValueError(f"unknown mapping kind {self.kind!r}")
        if self.kind == "union" and len(self.children) < 2:
            raise ValueError("a union mapping needs at least two children")
        if self.kind == "join" and not self.join_conditions:
            raise ValueError("a join mapping needs at least one join condition")
        if self.kind in ("direct", "join") and not self.assignments:
            raise ValueError(f"a {self.kind} mapping needs at least one assignment")

    # -- structure ----------------------------------------------------------

    def covered_attributes(self) -> set[str]:
        """Target attributes this mapping can populate."""
        if self.kind == "union":
            covered: set[str] = set()
            for child in self.children:
                covered |= child.covered_attributes()
            return covered
        return {assignment.target_attribute for assignment in self.assignments}

    def all_sources(self) -> set[str]:
        """Every source relation contributing to this mapping (recursively)."""
        if self.kind == "union":
            sources: set[str] = set()
            for child in self.children:
                sources |= child.all_sources()
            return sources
        return set(self.sources)

    def assignment_for(self, target_attribute: str) -> AttributeAssignment | None:
        """The assignment populating ``target_attribute`` (None for unions)."""
        for assignment in self.assignments:
            if assignment.target_attribute == target_attribute:
                return assignment
        return None

    def assignments_for_attribute(self, target_attribute: str) -> list[AttributeAssignment]:
        """All assignments (across union children) for one target attribute."""
        if self.kind == "union":
            found = []
            for child in self.children:
                found.extend(child.assignments_for_attribute(target_attribute))
            return found
        assignment = self.assignment_for(target_attribute)
        return [assignment] if assignment else []

    def structure_signature(self) -> tuple:
        """A score-free structural fingerprint of what this mapping materialises.

        Two mappings with equal signatures execute to identical tables:
        assignment *scores* are excluded (they move with every feedback
        round without affecting the produced rows). Used by the incremental
        engine to decide whether a cached materialisation is still valid for
        an id-stable mapping whose shape may have drifted.
        """
        if self.kind == "union":
            return (self.kind, tuple(child.structure_signature() for child in self.children))
        return (
            self.kind,
            tuple(self.sources),
            tuple(
                sorted(
                    (a.target_attribute, a.source_relation, a.source_attribute)
                    for a in self.assignments
                )
            ),
            tuple(
                sorted(
                    (c.left_relation, c.left_attribute, c.right_relation, c.right_attribute)
                    for c in self.join_conditions
                )
            ),
        )

    def leaf_mappings(self) -> list["SchemaMapping"]:
        """The non-union mappings at the leaves of this mapping."""
        if self.kind == "union":
            leaves = []
            for child in self.children:
                leaves.extend(child.leaf_mappings())
            return leaves
        return [self]

    def mean_match_score(self) -> float:
        """Average correspondence score across all assignments (provenance quality)."""
        assignments = [a for leaf in self.leaf_mappings() for a in leaf.assignments]
        if not assignments:
            return 0.0
        return sum(a.score for a in assignments) / len(assignments)

    # -- rendering -----------------------------------------------------------------

    def to_vadalog(self, target_attributes: Sequence[str]) -> str:
        """Render this mapping as Vadalog-lite rules over the source relations.

        Each source relation is treated as a predicate whose argument order
        follows ``target_attributes`` where matched and fresh variables
        elsewhere; union mappings render one rule per child.
        """
        if self.kind == "union":
            return "\n".join(child.to_vadalog(target_attributes) for child in self.children)
        head_terms = []
        for attribute in target_attributes:
            assignment = self.assignment_for(attribute)
            head_terms.append(_variable_for(attribute) if assignment else '"null"')
        head = f"{self.target_relation}({', '.join(head_terms)})"
        body_atoms = []
        for source in self.sources:
            terms = []
            for attribute in target_attributes:
                assignment = self.assignment_for(attribute)
                if assignment and assignment.source_relation == source:
                    terms.append(_variable_for(attribute))
                else:
                    terms.append("_")
            body_atoms.append(f"{source}({', '.join(terms)})")
        for condition in self.join_conditions:
            # Equi-joins over target variables are implicit through shared
            # variables; render them as explicit equality for clarity.
            left = _variable_for(condition.left_attribute)
            right = _variable_for(condition.right_attribute)
            if left != right:
                body_atoms.append(f"{left} = {right}")
        return f"{head} :- {', '.join(body_atoms)}."

    def describe(self) -> str:
        """One-line description used in traces and benchmark output."""
        if self.kind == "union":
            parts = " UNION ".join(child.mapping_id for child in self.children)
            return f"{self.mapping_id}: union({parts})"
        sources = ", ".join(self.sources)
        coverage = ", ".join(sorted(self.covered_attributes()))
        joins = ""
        if self.join_conditions:
            joins = f" on {'; '.join(str(c) for c in self.join_conditions)}"
        return f"{self.mapping_id}: {self.kind}({sources}){joins} -> [{coverage}]"

    def __str__(self) -> str:
        return self.describe()


def _variable_for(attribute: str) -> str:
    cleaned = "".join(ch for ch in attribute.title() if ch.isalnum())
    return cleaned or "X"
