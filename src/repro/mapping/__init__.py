"""Mapping generation, scoring, selection and execution."""

from repro.mapping.execution import MappingExecutor
from repro.mapping.generation import MappingGenerator, MappingGeneratorConfig
from repro.mapping.model import AttributeAssignment, JoinCondition, SchemaMapping
from repro.mapping.selection import (
    MappingScore,
    MappingScorer,
    MappingSelector,
    SelectionOutcome,
)
from repro.mapping.transducers import (
    FEEDBACK_PENALTIES_ARTIFACT_KEY,
    MAPPINGS_ARTIFACT_KEY,
    MappingGenerationTransducer,
    MappingQualityTransducer,
    MappingSelectionTransducer,
    ResultMaterialisationTransducer,
    SourceSelectionTransducer,
    result_relation_name,
)

__all__ = [
    "AttributeAssignment",
    "JoinCondition",
    "SchemaMapping",
    "MappingGenerator",
    "MappingGeneratorConfig",
    "MappingExecutor",
    "MappingScore",
    "MappingScorer",
    "MappingSelector",
    "SelectionOutcome",
    "MappingGenerationTransducer",
    "MappingQualityTransducer",
    "SourceSelectionTransducer",
    "MappingSelectionTransducer",
    "ResultMaterialisationTransducer",
    "MAPPINGS_ARTIFACT_KEY",
    "FEEDBACK_PENALTIES_ARTIFACT_KEY",
    "result_relation_name",
]
