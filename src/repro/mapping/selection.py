"""Mapping scoring and multi-criteria mapping selection.

Table 1: "Mapping Selection — Quality Metrics". Candidate mappings are
scored on the four quality criteria by materialising them and evaluating the
result (against whatever data context is available); selection then combines
the criterion scores using the weights derived from the user context (AHP)
— "the pairwise comparisons are used to derive weights that inform the
selection of mappings based on multi-dimensional optimization" (§3 step 4).
Without a user context, criteria are weighted uniformly.

Scoring additionally applies a cross-candidate *coverage prior* (how much of
the target schema, and how many rows relative to the best candidate, a
mapping produces) and decrements the confidence of mappings implicated by
lineage-targeted feedback (see :mod:`repro.provenance.feedback`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.mapping.execution import MappingExecutor
from repro.mapping.model import SchemaMapping
from repro.quality.cfd_learning import LearnedCFDs
from repro.quality.metrics import evaluate_quality
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["MappingScore", "MappingScorer", "SelectionOutcome", "MappingSelector"]


@dataclass
class MappingScore:
    """Criterion scores for one candidate mapping."""

    mapping_id: str
    criteria: dict[str, float]
    row_count: int = 0
    #: Mean correspondence score of the assignments (provenance confidence).
    match_confidence: float = 0.0

    def weighted(self, weights: Mapping[str, float] | None = None) -> float:
        """Weighted overall score; uniform weights when none are supplied."""
        if not self.criteria:
            return 0.0
        if not weights:
            return sum(self.criteria.values()) / len(self.criteria)
        total_weight = sum(weights.get(name, 0.0) for name in self.criteria)
        if total_weight <= 0:
            return sum(self.criteria.values()) / len(self.criteria)
        return (
            sum(value * weights.get(name, 0.0) for name, value in self.criteria.items())
            / total_weight
        )


class MappingScorer:
    """Materialises candidate mappings and scores them on the quality criteria."""

    def __init__(
        self,
        catalog: Catalog,
        target_schema: Schema,
        *,
        reference: Table | None = None,
        reference_key: Sequence[str] = (),
        master: Table | None = None,
        master_key: Sequence[str] = (),
        learned_cfds: LearnedCFDs | None = None,
        feedback_penalties: Mapping[tuple[str, str], float] | None = None,
        mapping_penalties: Mapping[str, Mapping[str, float]] | None = None,
        completeness_weights: Mapping[str, float] | None = None,
        coverage_prior: bool = True,
        base_table_provider: Callable[[SchemaMapping], Table | None] | None = None,
    ):
        self._executor = MappingExecutor(catalog)
        self._base_table_provider = base_table_provider
        self._target_schema = target_schema
        self._reference = reference
        self._reference_key = list(reference_key)
        self._master = master
        self._master_key = list(master_key)
        self._learned_cfds = learned_cfds
        self._feedback_penalties = dict(feedback_penalties or {})
        self._mapping_penalties = dict(mapping_penalties or {})
        self._completeness_weights = dict(completeness_weights or {})
        self._coverage_prior = coverage_prior

    def base_score(self, mapping: SchemaMapping) -> tuple[dict[str, float], int]:
        """Penalty-free criterion scores of one candidate (and its row count).

        This is the expensive part of scoring — the candidate is materialised
        and evaluated against the data context — and it depends only on the
        mapping's structure, the source tables, the data context and the
        learned CFDs. Feedback does not enter here, which is what makes the
        result cacheable across feedback-driven re-scores (see ``base_cache``
        in :meth:`score_all`).

        A ``base_table_provider`` (when configured) can serve the mapping's
        freshly-materialised rows from an existing snapshot — the
        incremental engine's pipeline state does this for the selected
        mapping, so a data-context or CFD refresh re-evaluates the winner
        without re-executing its joins. The provider must return exactly
        what :meth:`MappingExecutor.execute` would; None falls back to a
        real execution.
        """
        table = None
        if self._base_table_provider is not None:
            table = self._base_table_provider(mapping)
        if table is None:
            table = self._executor.execute(
                mapping, self._target_schema, result_name=f"__candidate_{mapping.mapping_id}"
            )
        cfds = self._learned_cfds.cfds if self._learned_cfds else []
        witnesses = self._learned_cfds.witnesses if self._learned_cfds else {}
        report = evaluate_quality(
            table,
            reference=self._reference,
            reference_key=self._reference_key,
            cfds=[cfd for cfd in cfds if cfd.rhs in table.schema],
            witnesses=witnesses,
            master=self._master,
            master_key=self._master_key,
            completeness_weights=self._completeness_weights or None,
        )
        return report.as_dict(), len(table)

    def score(
        self, mapping: SchemaMapping, base: tuple[dict[str, float], int] | None = None
    ) -> MappingScore:
        """Score one candidate mapping (``base`` reuses a cached base score)."""
        if base is None:
            base = self.base_score(mapping)
        base_criteria, row_count = base
        criteria = dict(base_criteria)
        accuracy = self._apply_feedback_penalty(mapping, criteria["accuracy"], row_count)
        criteria["accuracy"] = self._apply_mapping_penalty(mapping, accuracy, row_count)
        return MappingScore(
            mapping_id=mapping.mapping_id,
            criteria=criteria,
            row_count=row_count,
            match_confidence=mapping.mean_match_score(),
        )

    def score_all(
        self,
        mappings: Sequence[SchemaMapping],
        *,
        base_cache: dict[str, tuple[dict[str, float], int]] | None = None,
    ) -> dict[str, MappingScore]:
        """Score every candidate, adding the cross-candidate coverage prior.

        The ``coverage`` criterion blends how much of the target schema a
        mapping populates with how many rows it produces relative to the
        best candidate. It is what keeps bootstrap (when accuracy and
        relevance are still uninformative 0.5s) from picking a low-coverage
        join mapping whose handful of fully-populated rows win on
        completeness alone — the paper's pay-as-you-go story needs the
        *broad* result first, refined once data context and feedback arrive.

        ``base_cache`` maps mapping ids to previously computed
        :meth:`base_score` results; cached candidates skip materialisation
        entirely (the caller is responsible for invalidating the cache when
        sources, data context or CFDs change — see
        :class:`~repro.mapping.transducers.MappingQualityTransducer`). The
        cache is updated in place with any base scores computed here.
        """
        scores: dict[str, MappingScore] = {}
        for mapping in mappings:
            base = base_cache.get(mapping.mapping_id) if base_cache is not None else None
            if base is None:
                base = self.base_score(mapping)
                if base_cache is not None:
                    base_cache[mapping.mapping_id] = base
            scores[mapping.mapping_id] = self.score(mapping, base)
        if not self._coverage_prior or not scores:
            return scores
        target_attributes = [
            name for name in self._target_schema.attribute_names if not name.startswith("_")
        ]
        max_rows = max((score.row_count for score in scores.values()), default=0)
        for mapping in mappings:
            score = scores[mapping.mapping_id]
            if target_attributes:
                attribute_share = len(
                    mapping.covered_attributes() & set(target_attributes)
                ) / len(target_attributes)
            else:
                attribute_share = 0.0
            row_share = (score.row_count / max_rows) if max_rows > 0 else 0.0
            score.criteria["coverage"] = round((attribute_share + row_share) / 2, 6)
        return scores

    def _apply_feedback_penalty(
        self, mapping: SchemaMapping, accuracy: float, row_count: int
    ) -> float:
        """Blend reference-based accuracy with feedback-observed error rates.

        ``feedback_penalties`` maps ``(source_relation, target_attribute)`` to
        ``{"error_rate": …, "annotations": …}`` as published by the feedback
        assimilator. The observed signal is weighted by how much of the
        mapping's output the annotations actually cover, so a handful of
        (possibly targeted, hence biased) annotations nudge the estimate
        rather than dominating it.
        """
        if not self._feedback_penalties:
            return accuracy
        rates = []
        annotations = 0.0
        for leaf in mapping.leaf_mappings():
            for assignment in leaf.assignments:
                key = (assignment.source_relation, assignment.target_attribute)
                entry = self._feedback_penalties.get(key)
                if entry is None:
                    continue
                rates.append(float(entry.get("error_rate", 0.0)))
                annotations += float(entry.get("annotations", 0.0))
        if not rates:
            return accuracy
        observed_accuracy = 1.0 - sum(rates) / len(rates)
        weight = min(1.0, annotations / max(1.0, float(row_count)))
        return (1.0 - weight) * accuracy + weight * observed_accuracy

    def _apply_mapping_penalty(
        self, mapping: SchemaMapping, accuracy: float, row_count: int
    ) -> float:
        """Decrement the confidence of mappings implicated by lineage.

        ``mapping_penalties`` (the ``lineage_penalties`` artifact) maps
        mapping ids to feedback tallies attributed through why-provenance.
        Only implicated mappings are touched — the selective part of
        lineage-targeted feedback — and the observed error rate is weighted
        by annotation coverage exactly like the assignment-level blend.
        """
        entry = self._mapping_penalties.get(mapping.mapping_id)
        if not entry:
            return accuracy
        error_rate = float(entry.get("error_rate", 0.0))
        if error_rate <= 0.0:
            return accuracy
        annotations = float(entry.get("incorrect", 0.0)) + float(entry.get("correct", 0.0))
        weight = min(1.0, annotations / max(1.0, float(row_count)))
        return accuracy * (1.0 - 0.5 * error_rate * weight)


@dataclass
class SelectionOutcome:
    """The result of mapping selection."""

    ranking: list[tuple[str, float]]
    scores: dict[str, MappingScore]
    weights: dict[str, float] = field(default_factory=dict)

    @property
    def best_mapping_id(self) -> str:
        """The identifier of the winning mapping."""
        if not self.ranking:
            raise ValueError("selection produced an empty ranking")
        return self.ranking[0][0]

    @property
    def best_score(self) -> float:
        """The winning weighted score."""
        return self.ranking[0][1]


class MappingSelector:
    """Ranks candidate mappings by weighted criterion scores."""

    def __init__(self, *, tie_break_by_confidence: bool = True):
        self._tie_break_by_confidence = tie_break_by_confidence

    def select(
        self, scores: Mapping[str, MappingScore], weights: Mapping[str, float] | None = None
    ) -> SelectionOutcome:
        """Rank mappings; the first entry of the ranking is the selected one."""
        if not scores:
            raise ValueError("cannot select from an empty candidate set")
        weighted: list[tuple[str, float]] = []
        for mapping_id, score in scores.items():
            weighted.append((mapping_id, score.weighted(weights)))

        def sort_key(item: tuple[str, float]):
            mapping_id, value = item
            if self._tie_break_by_confidence:
                confidence = scores[mapping_id].match_confidence
            else:
                confidence = 0.0
            return (-round(value, 9), -round(confidence, 9), mapping_id)

        ranking = sorted(weighted, key=sort_key)
        return SelectionOutcome(ranking=ranking, scores=dict(scores), weights=dict(weights or {}))
