"""Mapping scoring and multi-criteria mapping selection.

Table 1: "Mapping Selection — Quality Metrics". Candidate mappings are
scored on the four quality criteria by materialising them and evaluating the
result (against whatever data context is available); selection then combines
the criterion scores using the weights derived from the user context (AHP)
— "the pairwise comparisons are used to derive weights that inform the
selection of mappings based on multi-dimensional optimization" (§3 step 4).
Without a user context, criteria are weighted uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.mapping.execution import MappingExecutor
from repro.mapping.model import SchemaMapping
from repro.quality.cfd_learning import LearnedCFDs
from repro.quality.metrics import evaluate_quality
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["MappingScore", "MappingScorer", "SelectionOutcome", "MappingSelector"]


@dataclass
class MappingScore:
    """Criterion scores for one candidate mapping."""

    mapping_id: str
    criteria: dict[str, float]
    row_count: int = 0
    #: Mean correspondence score of the assignments (provenance confidence).
    match_confidence: float = 0.0

    def weighted(self, weights: Mapping[str, float] | None = None) -> float:
        """Weighted overall score; uniform weights when none are supplied."""
        if not self.criteria:
            return 0.0
        if not weights:
            return sum(self.criteria.values()) / len(self.criteria)
        total_weight = sum(weights.get(name, 0.0) for name in self.criteria)
        if total_weight <= 0:
            return sum(self.criteria.values()) / len(self.criteria)
        return sum(value * weights.get(name, 0.0)
                   for name, value in self.criteria.items()) / total_weight


class MappingScorer:
    """Materialises candidate mappings and scores them on the quality criteria."""

    def __init__(self, catalog: Catalog, target_schema: Schema, *,
                 reference: Table | None = None,
                 reference_key: Sequence[str] = (),
                 master: Table | None = None,
                 master_key: Sequence[str] = (),
                 learned_cfds: LearnedCFDs | None = None,
                 feedback_penalties: Mapping[tuple[str, str], float] | None = None,
                 completeness_weights: Mapping[str, float] | None = None):
        self._executor = MappingExecutor(catalog)
        self._target_schema = target_schema
        self._reference = reference
        self._reference_key = list(reference_key)
        self._master = master
        self._master_key = list(master_key)
        self._learned_cfds = learned_cfds
        self._feedback_penalties = dict(feedback_penalties or {})
        self._completeness_weights = dict(completeness_weights or {})

    def score(self, mapping: SchemaMapping) -> MappingScore:
        """Score one candidate mapping."""
        table = self._executor.execute(mapping, self._target_schema,
                                       result_name=f"__candidate_{mapping.mapping_id}")
        cfds = self._learned_cfds.cfds if self._learned_cfds else []
        witnesses = self._learned_cfds.witnesses if self._learned_cfds else {}
        report = evaluate_quality(
            table,
            reference=self._reference,
            reference_key=self._reference_key,
            cfds=[cfd for cfd in cfds if cfd.rhs in table.schema],
            witnesses=witnesses,
            master=self._master,
            master_key=self._master_key,
            completeness_weights=self._completeness_weights or None,
        )
        criteria = report.as_dict()
        criteria["accuracy"] = self._apply_feedback_penalty(
            mapping, criteria["accuracy"], len(table))
        return MappingScore(
            mapping_id=mapping.mapping_id,
            criteria=criteria,
            row_count=len(table),
            match_confidence=mapping.mean_match_score(),
        )

    def score_all(self, mappings: Sequence[SchemaMapping]) -> dict[str, MappingScore]:
        """Score every candidate."""
        return {mapping.mapping_id: self.score(mapping) for mapping in mappings}

    def _apply_feedback_penalty(self, mapping: SchemaMapping, accuracy: float,
                                row_count: int) -> float:
        """Blend reference-based accuracy with feedback-observed error rates.

        ``feedback_penalties`` maps ``(source_relation, target_attribute)`` to
        ``{"error_rate": …, "annotations": …}`` as published by the feedback
        assimilator. The observed signal is weighted by how much of the
        mapping's output the annotations actually cover, so a handful of
        (possibly targeted, hence biased) annotations nudge the estimate
        rather than dominating it.
        """
        if not self._feedback_penalties:
            return accuracy
        rates = []
        annotations = 0.0
        for leaf in mapping.leaf_mappings():
            for assignment in leaf.assignments:
                key = (assignment.source_relation, assignment.target_attribute)
                entry = self._feedback_penalties.get(key)
                if entry is None:
                    continue
                rates.append(float(entry.get("error_rate", 0.0)))
                annotations += float(entry.get("annotations", 0.0))
        if not rates:
            return accuracy
        observed_accuracy = 1.0 - sum(rates) / len(rates)
        weight = min(1.0, annotations / max(1.0, float(row_count)))
        return (1.0 - weight) * accuracy + weight * observed_accuracy


@dataclass
class SelectionOutcome:
    """The result of mapping selection."""

    ranking: list[tuple[str, float]]
    scores: dict[str, MappingScore]
    weights: dict[str, float] = field(default_factory=dict)

    @property
    def best_mapping_id(self) -> str:
        """The identifier of the winning mapping."""
        if not self.ranking:
            raise ValueError("selection produced an empty ranking")
        return self.ranking[0][0]

    @property
    def best_score(self) -> float:
        """The winning weighted score."""
        return self.ranking[0][1]


class MappingSelector:
    """Ranks candidate mappings by weighted criterion scores."""

    def __init__(self, *, tie_break_by_confidence: bool = True):
        self._tie_break_by_confidence = tie_break_by_confidence

    def select(self, scores: Mapping[str, MappingScore],
               weights: Mapping[str, float] | None = None) -> SelectionOutcome:
        """Rank mappings; the first entry of the ranking is the selected one."""
        if not scores:
            raise ValueError("cannot select from an empty candidate set")
        weighted: list[tuple[str, float]] = []
        for mapping_id, score in scores.items():
            weighted.append((mapping_id, score.weighted(weights)))

        def sort_key(item: tuple[str, float]):
            mapping_id, value = item
            confidence = scores[mapping_id].match_confidence if self._tie_break_by_confidence else 0.0
            return (-round(value, 9), -round(confidence, 9), mapping_id)

        ranking = sorted(weighted, key=sort_key)
        return SelectionOutcome(ranking=ranking, scores=dict(scores),
                                weights=dict(weights or {}))
