"""Reproduction of the VADA architecture for cost-effective data wrangling.

The top-level package re-exports the high-level wrangling API; the
subpackages contain the architecture's components:

- :mod:`repro.relational` — relational substrate (tables, operators, catalog)
- :mod:`repro.datalog` — Vadalog-lite reasoner
- :mod:`repro.core` — knowledge base, transducers, orchestration
- :mod:`repro.extraction` — synthetic deep-web extraction (DIADEM substitute)
- :mod:`repro.matching` — schema and instance matching
- :mod:`repro.mapping` — mapping generation, selection and execution
- :mod:`repro.quality` — quality metrics, CFD learning, repair
- :mod:`repro.fusion` — duplicate detection and data fusion
- :mod:`repro.feedback` — user feedback assimilation
- :mod:`repro.context` — user context (pairwise preferences) and data context
- :mod:`repro.scenarios` — the real-estate demonstration scenario
- :mod:`repro.baselines` — static manual-ETL comparator
- :mod:`repro.wrangler` — the high-level ``Wrangler`` facade
"""

from repro.context import (
    ACCURACY,
    COMPLETENESS,
    CONSISTENCY,
    RELEVANCE,
    Criterion,
    DataContext,
    Preference,
    UserContext,
)
from repro.core import (
    Activity,
    Feedback,
    GenericNetworkTransducer,
    KnowledgeBase,
    Orchestrator,
    Predicates,
    PreferInstanceMatchingPolicy,
    Trace,
    Transducer,
    TransducerRegistry,
    TransducerResult,
)
from repro.provenance import (
    LineageTree,
    ProvenanceStore,
    SourceRef,
    explain,
    render_lineage,
)
from repro.relational import Attribute, Catalog, DataType, Schema, Table
from repro.scenarios import (
    RealEstateScenario,
    Scenario,
    ScenarioConfig,
    SynthConfig,
    family_names,
    generate_scenario,
    generate_synthetic,
    scenario_suite,
    target_schema,
)
from repro.wrangler import (
    BatchConfig,
    BatchReport,
    ScenarioRunResult,
    Wrangler,
    WranglerConfig,
    WranglingResult,
    build_default_registry,
    iter_run,
    run_batch,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # high-level API
    "Wrangler",
    "WranglerConfig",
    "WranglingResult",
    "build_default_registry",
    # core architecture
    "KnowledgeBase",
    "Transducer",
    "TransducerResult",
    "TransducerRegistry",
    "Orchestrator",
    "GenericNetworkTransducer",
    "PreferInstanceMatchingPolicy",
    "Activity",
    "Predicates",
    "Trace",
    "Feedback",
    # context
    "UserContext",
    "DataContext",
    "Preference",
    "Criterion",
    "COMPLETENESS",
    "ACCURACY",
    "CONSISTENCY",
    "RELEVANCE",
    # relational substrate
    "Schema",
    "Attribute",
    "Table",
    "Catalog",
    "DataType",
    # scenarios (hand-written and generated)
    "ScenarioConfig",
    "RealEstateScenario",
    "generate_scenario",
    "target_schema",
    "Scenario",
    "SynthConfig",
    "family_names",
    "generate_synthetic",
    "scenario_suite",
    # batch runner
    "BatchConfig",
    "BatchReport",
    "ScenarioRunResult",
    "iter_run",
    "run_batch",
    "run_scenario",
    # provenance
    "ProvenanceStore",
    "SourceRef",
    "LineageTree",
    "explain",
    "render_lineage",
]
