"""Feedback-driven transducers: mapping evaluation and feedback repair.

When ``feedback`` facts appear in the knowledge base the mapping-evaluation
transducer becomes runnable. It attributes the feedback to the matches used
by the selected mapping (through recorded why-provenance when available),
revises their scores, and publishes feedback-derived error rates — changes
to the ``match`` predicate then make mapping generation (and everything
downstream) runnable again, closing the paper's feedback loop. The
feedback-repair transducer applies the annotations directly to the
materialised result (values the user has marked incorrect are removed,
tuples marked incorrect are dropped), so the user's effort pays off
immediately as well as through re-orchestration.
"""

from __future__ import annotations

from repro.core.facts import Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.feedback.assimilation import FeedbackAssimilator
from repro.incremental.state import incremental_state
from repro.mapping.model import PROVENANCE_ROW_ID
from repro.mapping.transducers import FEEDBACK_PENALTIES_ARTIFACT_KEY, MAPPINGS_ARTIFACT_KEY
from repro.provenance.feedback import (
    LINEAGE_PENALTIES_ARTIFACT_KEY,
    LineageFeedbackPropagator,
)
from repro.provenance.model import OPERATOR_FEEDBACK, provenance_store
from repro.quality.transducers import quality_stats_stash
from repro.relational.types import is_null

__all__ = ["MappingEvaluationTransducer", "FeedbackRepairTransducer"]


class MappingEvaluationTransducer(Transducer):
    """Revises match scores in the light of user feedback on results."""

    name = "mapping_evaluation"
    activity = Activity.EVALUATION
    priority = 10
    # Only feedback itself is a dependency: re-materialising the result must
    # not re-trigger evaluation of the *same* feedback (that would repeatedly
    # penalise the same matches and never quiesce).
    input_dependencies = ("feedback(F, R, K, A, V)",)

    def __init__(self, assimilator: FeedbackAssimilator | None = None):
        super().__init__()
        self._assimilator = assimilator or FeedbackAssimilator()

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        candidates = kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {})
        selected_mapping = None
        for mapping_id, rank in kb.facts(Predicates.MAPPING_SELECTED):
            if rank == 1 and mapping_id in candidates:
                selected_mapping = candidates[mapping_id]
                break
        store = provenance_store(kb)
        # One lineage-targeted attribution pass: it yields both the
        # per-assignment evidence (reused by the assimilator below) and the
        # per-mapping penalties naming exactly the implicated candidates.
        propagation = LineageFeedbackPropagator().collect(kb, store, candidates)
        evidence = self._assimilator.collect_evidence(
            kb, selected_mapping, store, propagation=propagation
        )
        source_rows = self._assimilator.source_row_counts(kb)
        revised = self._assimilator.revise_matches(kb, evidence, source_rows)
        penalties = self._assimilator.error_rates(evidence)
        kb.store_artifact(FEEDBACK_PENALTIES_ARTIFACT_KEY, penalties)
        kb.store_artifact(LINEAGE_PENALTIES_ARTIFACT_KEY, propagation.mapping_penalties)
        problem_assignments = sorted(
            f"{source}.{attribute}={entry['error_rate']:.2f}"
            for (source, attribute), entry in penalties.items()
            if entry["error_rate"] > 0
        )
        return TransducerResult(
            facts_added=0,
            notes=(
                f"assimilated feedback on {len(evidence)} assignments; "
                f"revised {revised} match scores; "
                f"{len(propagation.implicated_mappings())} mappings implicated"
            ),
            details={
                "evidence": {
                    f"{s}.{a}": (e.correct, e.incorrect) for (s, a), e in evidence.items()
                },
                "revised_matches": revised,
                "problem_assignments": problem_assignments,
                "implicated_mappings": propagation.implicated_mappings(),
            },
        )


class FeedbackRepairTransducer(Transducer):
    """Applies feedback annotations directly to the materialised result.

    - attribute-level ``incorrect`` feedback removes the flagged value (a
      known-wrong value is worse than a missing one for downstream analysis);
    - tuple-level ``incorrect`` feedback drops the row.

    The transducer re-runs after every re-materialisation (the ``result``
    watch) so the user's annotations keep being honoured even when the
    result is rebuilt from a revised mapping.
    """

    name = "feedback_repair"
    activity = Activity.REPAIR
    priority = 20
    input_dependencies = ("feedback(F, R, K, A, V)",)
    watch_predicates = ("result",)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        state = incremental_state(kb, create=False)
        feedback_rows = kb.facts(Predicates.FEEDBACK)
        if state is not None:
            # Whatever this pass applies (or skips as already applied) is
            # reflected in the materialised tables from here on.
            state.observe_feedback_applied({str(row[0]) for row in feedback_rows})
        by_relation: dict[str, list[tuple[str, str]]] = {}
        for _fid, relation, row_key, attribute, verdict in feedback_rows:
            if verdict != Predicates.INCORRECT:
                continue
            by_relation.setdefault(relation, []).append((str(row_key), attribute))
        if not by_relation:
            return TransducerResult(notes="no negative feedback to apply")
        cells_cleared = 0
        rows_dropped = 0
        tables_written = []
        store = provenance_store(kb)
        stash = quality_stats_stash(kb, create=False)
        for relation, annotations in by_relation.items():
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            if PROVENANCE_ROW_ID not in table.schema:
                continue
            # Keep the quality sufficient statistics tracking the rewrite:
            # this is the one table mutation the metric transducer's watch
            # predicates cannot see, so the accumulators would silently go
            # stale without it. Entries that already drifted are dropped
            # (the incremental engine rebuilds them from the table).
            entry = stash.entries.get(relation) if stash is not None else None
            if entry is not None and entry.stats.row_count != len(table):
                stash.entries.pop(relation, None)
                entry = None
            stats = entry.stats if entry is not None else None
            row_id_position = table.schema.position(PROVENANCE_ROW_ID)
            cell_marks = {
                (row_key, attribute)
                for row_key, attribute in annotations
                if attribute != Predicates.ANY_ATTRIBUTE
            }
            row_marks = {
                row_key
                for row_key, attribute in annotations
                if attribute == Predicates.ANY_ATTRIBUTE
            }
            new_rows = []
            changed = False
            for values in table.tuples():
                row_key = str(values[row_id_position])
                if row_key in row_marks:
                    rows_dropped += 1
                    changed = True
                    store.record_drop(relation, row_key, reason="feedback: tuple marked incorrect")
                    if stats is not None:
                        stats.remove_row(values)
                    continue
                mutable = list(values)
                for position, attribute in enumerate(table.schema.attribute_names):
                    if (row_key, attribute) in cell_marks and not is_null(mutable[position]):
                        mutable[position] = None
                        cells_cleared += 1
                        changed = True
                        # Keep the prior witnesses: the cell is cleared, but
                        # the lineage of the value the user rejected is what
                        # feedback assimilation must blame.
                        prior = store.cell_lineage(relation, row_key, attribute)
                        store.record_cell(
                            relation,
                            row_key,
                            attribute,
                            operator=OPERATOR_FEEDBACK,
                            witnesses=prior.witnesses if prior else (),
                            detail="cleared: marked incorrect",
                        )
                new_values = tuple(mutable)
                if stats is not None and new_values != values:
                    stats.replace_row(values, new_values)
                new_rows.append(new_values)
            if changed:
                rewritten = table.replace_rows(new_rows)
                kb.update_table(rewritten)
                if state is not None:
                    state.observe_table_updated(rewritten)
                tables_written.append(relation)
        return TransducerResult(
            facts_added=0,
            tables_written=tables_written,
            notes=f"applied feedback: cleared {cells_cleared} cells, dropped {rows_dropped} rows",
            details={"cells_cleared": cells_cleared, "rows_dropped": rows_dropped},
        )
