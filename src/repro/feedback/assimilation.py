"""Assimilating feedback: revising match scores and deriving error rates.

Paper §2.3: "A mapping evaluation transducer, given information about the
results of the mapping may identify a problem with a specific match used
within the mapping, and revise the score of that match in the knowledge
base. This may in turn lead to the rerunning of the mapping generation
transducer in the light of the new evidence, and thus to revised results
for the user."

The assimilator:

1. attributes each feedback annotation to the ``(source relation, target
   attribute)`` assignment that produced the annotated value — through the
   recorded why-provenance when a lineage store is available (see
   :mod:`repro.provenance.feedback`), else via the result's provenance
   columns;
2. computes per-assignment error rates;
3. revises the corresponding ``match`` scores (down for error-prone
   assignments, slightly up for confirmed ones);
4. publishes the error rates as the ``feedback_penalties`` artifact used by
   mapping scoring.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.facts import Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.matching.correspondence import Correspondence, MatchSet
from repro.mapping.model import PROVENANCE_ROW_ID, PROVENANCE_SOURCE, SchemaMapping
from repro.provenance.feedback import (
    LineageEvidence,
    LineageFeedbackPropagator,
    LineagePropagation,
)
from repro.provenance.model import ProvenanceStore

__all__ = ["AssignmentEvidence", "FeedbackAssimilator"]

#: Per-assignment feedback tallies. The lineage propagator's evidence record
#: carries exactly the fields assimilation needs (source relation, target
#: attribute, correct/incorrect tallies, error rate), so there is one
#: evidence type whichever attribution path produced it.
AssignmentEvidence = LineageEvidence


class FeedbackAssimilator:
    """Turns feedback facts into revised match scores and error-rate artifacts."""

    def __init__(
        self,
        *,
        penalty_scale: float = 0.4,
        reward_scale: float = 0.05,
        min_annotations: int = 1,
    ):
        self._penalty_scale = penalty_scale
        self._reward_scale = reward_scale
        self._min_annotations = min_annotations

    def collect_evidence(
        self,
        kb: KnowledgeBase,
        selected_mapping: SchemaMapping | None,
        provenance: ProvenanceStore | None = None,
        *,
        propagation: LineagePropagation | None = None,
    ) -> dict[tuple[str, str], AssignmentEvidence]:
        """Aggregate feedback facts into per-assignment evidence.

        With a provenance store, each annotation is attributed through the
        recorded lineage of the annotated cell: joined-in attributes are
        blamed on the lookup source that supplied them, fused cells on the
        sources whose value won the conflict, repaired cells on the CFD that
        rewrote them. Annotations without recorded lineage fall back to the
        coarse path — the result table's ``_source`` column identifies the
        contributing source relation of the whole row. Callers that already
        ran the propagator (the mapping-evaluation transducer does, for the
        per-mapping penalties) pass its ``propagation`` to avoid a second
        attribution pass over the same feedback facts.
        """
        evidence: dict[tuple[str, str], AssignmentEvidence] = {}
        feedback_rows = kb.facts(Predicates.FEEDBACK)
        if not feedback_rows:
            return evidence
        if propagation is None and provenance is not None:
            propagation = LineageFeedbackPropagator().collect(kb, provenance)
        if propagation is not None:
            evidence.update(propagation.evidence)
            feedback_rows = propagation.unattributed
            if not feedback_rows:
                return evidence
        row_sources = self._row_sources(kb)
        target_attributes = self._target_attributes(kb)
        for _fid, relation, row_key, attribute, verdict in feedback_rows:
            source = row_sources.get((relation, row_key))
            if source is None:
                # Fall back to the row-key prefix ("source:index").
                source = str(row_key).split(":", 1)[0] if ":" in str(row_key) else None
            if source is None:
                continue
            correct = verdict == Predicates.CORRECT
            if attribute == Predicates.ANY_ATTRIBUTE:
                attributes = target_attributes.get(relation, [])
            else:
                attributes = [attribute]
            for target_attribute in attributes:
                key = (source, target_attribute)
                entry = evidence.setdefault(key, AssignmentEvidence(source, target_attribute))
                if correct:
                    entry.correct += 1
                else:
                    entry.incorrect += 1
        return evidence

    def revise_matches(
        self,
        kb: KnowledgeBase,
        evidence: dict[tuple[str, str], AssignmentEvidence],
        source_row_counts: dict[str, int] | None = None,
    ) -> int:
        """Revise ``match`` scores in the KB according to the evidence.

        Returns the number of match facts whose score changed. Error-prone
        assignments are penalised by ``penalty_scale * error_rate *
        coverage`` where coverage is the fraction of that source's result
        rows the annotations actually inspected — a handful of (possibly
        targeted) annotations nudges the score, sustained negative feedback
        eventually pushes the match below the mapping-generation threshold.
        Fully confirmed assignments get a small reward.
        """
        if not evidence:
            return 0
        source_row_counts = source_row_counts or {}
        matches = MatchSet.from_kb(kb)
        revised: list[Correspondence] = []
        changed = 0
        for correspondence in matches:
            key = (correspondence.source_relation, correspondence.target_attribute)
            entry = evidence.get(key)
            if entry is None or entry.total < self._min_annotations:
                revised.append(correspondence)
                continue
            rows = max(1, source_row_counts.get(correspondence.source_relation, entry.total))
            coverage = min(1.0, entry.total / rows)
            if entry.error_rate > 0:
                new_score = correspondence.score * (
                    1.0 - self._penalty_scale * entry.error_rate * coverage
                )
            else:
                support = min(1.0, entry.correct / 10.0)
                new_score = min(1.0, correspondence.score + self._reward_scale * support)
            new_score = round(max(0.0, new_score), 6)
            if abs(new_score - correspondence.score) > 1e-9:
                changed += 1
            revised.append(correspondence.with_score(new_score))
        if changed:
            kb.retract_where(Predicates.MATCH)
            MatchSet(revised).assert_into(kb)
        return changed

    def error_rates(
        self, evidence: dict[tuple[str, str], AssignmentEvidence]
    ) -> dict[tuple[str, str], dict[str, float]]:
        """Per-assignment error statistics (the ``feedback_penalties`` artifact).

        Each entry carries both the observed error rate and the number of
        annotations it is based on, so consumers can weight the (possibly
        biased) feedback sample against their own evidence.
        """
        return {
            key: {"error_rate": entry.error_rate, "annotations": float(entry.total)}
            for key, entry in evidence.items()
            if entry.total >= self._min_annotations
        }

    def source_row_counts(self, kb: KnowledgeBase) -> dict[str, int]:
        """Number of result rows contributed by each source relation."""
        counts: dict[str, int] = defaultdict(int)
        for (_relation, _row_key), source in self._row_sources(kb).items():
            counts[source] += 1
        return dict(counts)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _row_sources(kb: KnowledgeBase) -> dict[tuple[str, str], str]:
        """(result relation, row key) → contributing source relation."""
        sources: dict[tuple[str, str], str] = {}
        for relation, _mapping_id, _rows in kb.facts(Predicates.RESULT):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            if PROVENANCE_ROW_ID not in table.schema or PROVENANCE_SOURCE not in table.schema:
                continue
            for row in table.rows():
                sources[(relation, str(row[PROVENANCE_ROW_ID]))] = str(row[PROVENANCE_SOURCE])
        return sources

    @staticmethod
    def _target_attributes(kb: KnowledgeBase) -> dict[str, list[str]]:
        """Result relation → its non-bookkeeping attributes."""
        attributes: dict[str, list[str]] = {}
        for relation, _mapping_id, _rows in kb.facts(Predicates.RESULT):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            attributes[relation] = [
                name for name in table.schema.attribute_names if not name.startswith("_")
            ]
        return attributes
