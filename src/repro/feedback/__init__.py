"""User feedback: annotations, assimilation and the mapping-evaluation transducer."""

from repro.feedback.annotations import FeedbackCollector, simulate_feedback
from repro.feedback.assimilation import AssignmentEvidence, FeedbackAssimilator
from repro.feedback.transducers import FeedbackRepairTransducer, MappingEvaluationTransducer

__all__ = [
    "FeedbackCollector",
    "simulate_feedback",
    "AssignmentEvidence",
    "FeedbackAssimilator",
    "MappingEvaluationTransducer",
    "FeedbackRepairTransducer",
]
