"""Feedback annotations on wrangling results.

§3 step 3: "The user views the result of the wrangling process … and
provides feedback to indicate that some of the results are correct or
incorrect – such feedback can be at the tuple level or the attribute
level." Feedback is asserted into the knowledge base as ``feedback`` facts,
which makes the mapping-evaluation transducer runnable.

:class:`FeedbackCollector` also simulates a user annotating results by
comparing them against ground truth (used by the examples, benchmarks and
the pay-as-you-go experiment, where no human is in the loop).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.facts import Feedback, Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.mapping.model import PROVENANCE_ROW_ID
from repro.relational.keys import normalise_key_tuple
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["FeedbackCollector", "simulate_feedback"]


class FeedbackCollector:
    """Creates and asserts feedback annotations."""

    def __init__(self, kb: KnowledgeBase):
        self._kb = kb
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"fb_{self._counter}"

    def annotate_attribute(
        self, relation: str, row_key: str, attribute: str, *, correct: bool
    ) -> Feedback:
        """Attribute-level feedback on one result cell."""
        feedback = Feedback(self._next_id(), relation, row_key, attribute, correct)
        self._kb.assert_tuple(feedback.to_fact())
        return feedback

    def annotate_tuple(self, relation: str, row_key: str, *, correct: bool) -> Feedback:
        """Tuple-level feedback on one result row."""
        feedback = Feedback(self._next_id(), relation, row_key, Predicates.ANY_ATTRIBUTE, correct)
        self._kb.assert_tuple(feedback.to_fact())
        return feedback

    def annotate_many(self, annotations: Iterable[Feedback]) -> int:
        """Assert pre-built feedback annotations; returns how many were new."""
        added = 0
        for annotation in annotations:
            added += int(self._kb.assert_tuple(annotation.to_fact()))
        return added


def simulate_feedback(
    result: Table,
    ground_truth: Table,
    key: Sequence[str],
    *,
    attributes: Sequence[str] | None = None,
    budget: int = 50,
    seed: int = 0,
    strategy: str = "random",
    id_prefix: str = "sim",
) -> list[Feedback]:
    """Simulate a user annotating ``budget`` result cells against ground truth.

    Cells are sampled from the checkable cells (rows whose key appears in the
    ground truth, attributes present in both tables) and marked correct or
    incorrect according to the ground truth — what a knowledgeable user (the
    paper's data scientist) would report.

    ``strategy`` controls how the user spends the annotation budget:

    - ``"random"`` — cells are sampled uniformly (an unbiased audit);
    - ``"targeted"`` — erroneous cells are annotated first (the paper's
      motivating behaviour: values that are "clearly not correct", such as a
      bedroom count of 250, catch the user's eye), with the remaining budget
      spent confirming correct cells.
    """
    if strategy not in ("random", "targeted"):
        raise ValueError(f"unknown feedback strategy {strategy!r}")
    rng = random.Random(seed)
    if attributes is None:
        attributes = [
            name
            for name in result.schema.attribute_names
            if name in ground_truth.schema and name not in key and not name.startswith("_")
        ]
    truth_index: dict[tuple, dict] = {}
    for row in ground_truth.rows():
        truth_key = normalise_key_tuple(row.get(k) for k in key)
        if any(part is None for part in truth_key):
            continue
        truth_index.setdefault(truth_key, row.to_dict())

    candidates: list[tuple[str, str, bool]] = []
    has_row_id = PROVENANCE_ROW_ID in result.schema
    for index, row in enumerate(result.rows()):
        result_key = normalise_key_tuple(row.get(k) for k in key)
        expected = truth_index.get(result_key)
        if expected is None:
            continue
        row_key = str(row[PROVENANCE_ROW_ID]) if has_row_id else str(index)
        for attribute in attributes:
            expected_value = expected.get(attribute)
            if is_null(expected_value):
                continue
            actual = row.get(attribute)
            if is_null(actual):
                # The user can tell a missing value is wrong at tuple level,
                # but attribute feedback targets observed values.
                continue
            correct = _cell_equal(actual, expected_value)
            candidates.append((row_key, attribute, correct))

    rng.shuffle(candidates)
    if strategy == "targeted":
        candidates.sort(key=lambda item: item[2])  # incorrect (False) first
    annotations = []
    for counter, (row_key, attribute, correct) in enumerate(candidates[:budget], start=1):
        annotations.append(
            Feedback(
                feedback_id=f"{id_prefix}_{counter}",
                relation=result.name,
                row_key=row_key,
                attribute=attribute,
                correct=correct,
            )
        )
    return annotations


def _cell_equal(left, right) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(float(left) - float(right)) < 1e-9
    return left == right
