"""Synthetic deep-web extraction (DIADEM substitute)."""

from repro.extraction.extractor import WebExtractor
from repro.extraction.noise import NoiseInjector, NoiseProfile
from repro.extraction.pages import Listing, ResultPage, SiteTemplate, SyntheticSite
from repro.extraction.transducers import (
    DEFAULT_ATTRIBUTE_HINTS,
    WEB_SOURCE_PREDICATE,
    DataExtractionTransducer,
    register_web_source,
    web_pages_artifact_key,
)
from repro.extraction.wrapper import ExtractionRule, SiteWrapper, induce_wrapper

__all__ = [
    "Listing",
    "ResultPage",
    "SiteTemplate",
    "SyntheticSite",
    "NoiseProfile",
    "NoiseInjector",
    "ExtractionRule",
    "SiteWrapper",
    "induce_wrapper",
    "WebExtractor",
    "DataExtractionTransducer",
    "register_web_source",
    "web_pages_artifact_key",
    "WEB_SOURCE_PREDICATE",
    "DEFAULT_ATTRIBUTE_HINTS",
]
