"""Noise injection: the defects real web extraction introduces.

The paper motivates feedback with a concrete extraction error: "automatic
web data extraction may be using the area of the master bedroom as the
number of bedrooms". The noise model reproduces that error plus the other
defects the quality components are designed to handle:

- missing values (fields absent from listings);
- format drift (price rendered with currency symbols and separators,
  postcodes lower-cased or stripped of their space);
- wrong-field extraction (bedroom count replaced by a room area);
- typos in street names (breaking exact matching and CFD checks).

All noise is seeded and applied per (attribute, rate) so experiments can
sweep noise levels deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, MutableMapping, Sequence

__all__ = ["NoiseProfile", "NoiseInjector"]


@dataclass(frozen=True)
class NoiseProfile:
    """Noise rates for one source (all rates are per-cell probabilities)."""

    #: Attribute → probability of the value being missing.
    missing_rates: Mapping[str, float] = field(default_factory=dict)
    #: Probability that ``bedrooms`` carries a room area instead of a count.
    bedroom_area_rate: float = 0.0
    #: Probability of a typo being introduced into ``street``.
    street_typo_rate: float = 0.0
    #: Probability of the postcode losing its space / being lower-cased.
    postcode_format_rate: float = 0.0
    #: Probability of the ``type`` value being abbreviated or mis-cased.
    type_variation_rate: float = 0.0

    def missing_rate(self, attribute: str) -> float:
        """The missing-value rate for ``attribute`` (0 when unspecified)."""
        return float(self.missing_rates.get(attribute, 0.0))


#: Common abbreviations of property types seen across portals.
_TYPE_VARIANTS = {
    "detached": ["Detached", "detached house", "Det."],
    "semi-detached": ["Semi-Detached", "semi detached", "Semi"],
    "terraced": ["Terraced", "terrace", "Terr."],
    "flat": ["Flat", "apartment", "FLAT"],
    "bungalow": ["Bungalow", "bungalow", "Bung."],
}


class NoiseInjector:
    """Applies a :class:`NoiseProfile` to clean records."""

    def __init__(self, profile: NoiseProfile, *, seed: int = 0):
        self._profile = profile
        self._rng = random.Random(seed)

    @property
    def profile(self) -> NoiseProfile:
        """The noise profile being applied."""
        return self._profile

    def corrupt_records(self, records: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Return noisy copies of ``records`` (originals are not modified)."""
        return [self.corrupt_record(dict(record)) for record in records]

    def corrupt_record(self, record: MutableMapping[str, Any]) -> dict[str, Any]:
        """Apply every noise channel to one record."""
        noisy = dict(record)
        profile = self._profile
        rng = self._rng
        for attribute in list(noisy):
            if rng.random() < profile.missing_rate(attribute):
                noisy[attribute] = None
        if "bedrooms" in noisy and noisy["bedrooms"] is not None:
            if rng.random() < profile.bedroom_area_rate:
                # The classic DIADEM-style error: master bedroom area (in
                # square feet) extracted as the number of bedrooms.
                noisy["bedrooms"] = rng.randint(90, 400)
        if "street" in noisy and isinstance(noisy["street"], str):
            if rng.random() < profile.street_typo_rate:
                noisy["street"] = self._introduce_typo(noisy["street"])
        if "postcode" in noisy and isinstance(noisy["postcode"], str):
            if rng.random() < profile.postcode_format_rate:
                noisy["postcode"] = self._drift_postcode(noisy["postcode"])
        if "type" in noisy and isinstance(noisy["type"], str):
            if rng.random() < profile.type_variation_rate:
                noisy["type"] = self._vary_type(noisy["type"])
        return noisy

    # -- individual channels ----------------------------------------------------

    def _introduce_typo(self, text: str) -> str:
        if len(text) < 4:
            return text
        position = self._rng.randrange(1, len(text) - 1)
        action = self._rng.choice(("drop", "swap", "double"))
        if action == "drop":
            return text[:position] + text[position + 1:]
        if action == "swap" and position + 1 < len(text):
            return text[:position] + text[position + 1] + text[position] + text[position + 2:]
        return text[:position] + text[position] + text[position:]

    def _drift_postcode(self, postcode: str) -> str:
        drifted = postcode.replace(" ", "") if self._rng.random() < 0.5 else postcode
        return drifted.lower() if self._rng.random() < 0.5 else drifted

    def _vary_type(self, property_type: str) -> str:
        variants = _TYPE_VARIANTS.get(property_type.strip().lower())
        if not variants:
            return property_type.upper() if self._rng.random() < 0.5 else property_type.title()
        return self._rng.choice(variants)
