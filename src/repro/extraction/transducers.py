"""The data-extraction transducer.

Extraction is the first activity of the wrangling lifecycle; the generic
network transducer schedules it before matching. The transducer is
runnable when ``web_source`` facts point at page artifacts in the knowledge
base; it extracts each site's pages into a source table and registers it
(which in turn makes schema matching runnable — the dependency-driven data
flow of §2.3).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.facts import Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.extraction.extractor import WebExtractor
from repro.extraction.pages import ResultPage
from repro.extraction.wrapper import SiteWrapper, induce_wrapper

__all__ = [
    "WEB_SOURCE_PREDICATE",
    "web_pages_artifact_key",
    "register_web_source",
    "DataExtractionTransducer",
]

#: KB predicate marking a registered web source: ``web_source(name)``.
WEB_SOURCE_PREDICATE = "web_source"

#: Attribute hints used when inducing wrappers for the real-estate domain.
DEFAULT_ATTRIBUTE_HINTS: dict[str, tuple[str, ...]] = {
    "price": ("price", "asking"),
    "street": ("street", "address line", "road"),
    "postcode": ("postcode", "post code", "zip"),
    "bedrooms": ("bedroom", "beds"),
    "type": ("type", "property type", "style"),
    "description": ("description", "summary", "details"),
    "crime": ("crime",),
}


def web_pages_artifact_key(source_name: str) -> str:
    """Artifact key under which a web source's pages are stored."""
    return f"web_pages:{source_name}"


def register_web_source(
    kb: KnowledgeBase,
    source_name: str,
    pages: Sequence[ResultPage],
    *,
    wrapper: SiteWrapper | None = None,
) -> None:
    """Register a web source (pages + optional hand-written wrapper) in the KB."""
    kb.store_artifact(web_pages_artifact_key(source_name), list(pages))
    if wrapper is not None:
        kb.store_artifact(f"wrapper:{source_name}", wrapper)
    kb.assert_fact(WEB_SOURCE_PREDICATE, source_name)


class DataExtractionTransducer(Transducer):
    """Extracts registered web sources into relational source tables."""

    name = "data_extraction"
    activity = Activity.EXTRACTION
    priority = 10
    input_dependencies = (f"{WEB_SOURCE_PREDICATE}(S)",)

    def __init__(self, attribute_hints: Mapping[str, Sequence[str]] | None = None):
        super().__init__()
        self._attribute_hints = dict(attribute_hints or DEFAULT_ATTRIBUTE_HINTS)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        extracted = []
        total_rows = 0
        for (source_name,) in kb.facts(WEB_SOURCE_PREDICATE):
            pages = kb.get_artifact(web_pages_artifact_key(source_name))
            if not pages:
                continue
            wrapper = kb.get_artifact(f"wrapper:{source_name}")
            if wrapper is None:
                wrapper = induce_wrapper(source_name, pages, attribute_hints=self._attribute_hints)
            table = WebExtractor(wrapper).extract(pages, table_name=source_name)
            if kb.has_table(source_name):
                kb.update_table(table)
            else:
                kb.register_table(table, Predicates.ROLE_SOURCE)
            extracted.append(source_name)
            total_rows += len(table)
        return TransducerResult(
            facts_added=0,
            tables_written=extracted,
            notes=f"extracted {len(extracted)} web sources ({total_rows} rows)",
            details={"sources": extracted},
        )
