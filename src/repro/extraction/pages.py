"""Synthetic deep-web result pages.

The paper's source tables "represent the results of web data extraction over
deep web sources, as can be generated automatically by DIADEM". DIADEM (and
the live portals it wraps) is not available offline, so this module provides
the closest synthetic equivalent: a :class:`SyntheticSite` renders clean
property records into semi-structured listing pages using a site-specific
template, and the extractor (:mod:`repro.extraction.extractor`) turns the
pages back into relational data. The round trip exercises the same code
path the architecture expects from a web-extraction transducer, including
the characteristic extraction errors (mislabelled fields, format drift,
missing values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["Listing", "ResultPage", "SiteTemplate", "SyntheticSite"]


@dataclass(frozen=True)
class Listing:
    """One listing block on a result page: ordered (label, value) fields."""

    listing_id: str
    fields: tuple[tuple[str, str], ...]

    def field_dict(self) -> dict[str, str]:
        """The fields as a dictionary (last value wins for duplicate labels)."""
        return dict(self.fields)

    def render(self) -> str:
        """Render the listing as a labelled text block."""
        lines = [f"== listing {self.listing_id} =="]
        lines.extend(f"{label}: {value}" for label, value in self.fields)
        return "\n".join(lines)


@dataclass(frozen=True)
class ResultPage:
    """One page of listings returned by a deep-web query."""

    site: str
    page_number: int
    listings: tuple[Listing, ...]

    def render(self) -> str:
        """Render the page as text (what a scraped page body would contain)."""
        header = f"### {self.site} — page {self.page_number} ({len(self.listings)} results)"
        return "\n\n".join([header, *[listing.render() for listing in self.listings]])

    def __len__(self) -> int:
        return len(self.listings)


@dataclass(frozen=True)
class SiteTemplate:
    """How one site labels and formats the record fields.

    ``field_labels`` maps canonical attribute names (price, street, postcode,
    bedrooms, type, description) to the labels the site uses;
    ``price_format`` controls rendering of prices (``"plain"`` → ``325000``,
    ``"currency"`` → ``£325,000``); ``dropped_fields`` never appear on the
    page (a real site simply may not publish them).
    """

    name: str
    field_labels: Mapping[str, str]
    price_format: str = "plain"
    dropped_fields: tuple[str, ...] = ()

    def label_for(self, attribute: str) -> str | None:
        """The page label used for ``attribute`` (None when dropped)."""
        if attribute in self.dropped_fields:
            return None
        return self.field_labels.get(attribute, attribute)

    def format_price(self, price: float) -> str:
        """Render a price value per the site's convention."""
        if self.price_format == "currency":
            return f"£{price:,.0f}"
        return f"{price:.0f}"


class SyntheticSite:
    """Generates result pages from clean records for one site template."""

    def __init__(self, template: SiteTemplate, *, page_size: int = 25):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self._template = template
        self._page_size = page_size

    @property
    def template(self) -> SiteTemplate:
        """The site template."""
        return self._template

    def render_pages(self, records: Sequence[Mapping[str, object]]) -> list[ResultPage]:
        """Render ``records`` into result pages of ``page_size`` listings."""
        listings = [self._render_listing(index, record) for index, record in enumerate(records)]
        pages = []
        for page_number, start in enumerate(range(0, len(listings), self._page_size), start=1):
            chunk = tuple(listings[start : start + self._page_size])
            pages.append(ResultPage(self._template.name, page_number, chunk))
        return pages

    def _render_listing(self, index: int, record: Mapping[str, object]) -> Listing:
        fields: list[tuple[str, str]] = []
        for attribute, value in record.items():
            label = self._template.label_for(attribute)
            if label is None or value is None:
                continue
            if attribute == "price" and isinstance(value, (int, float)):
                rendered = self._template.format_price(float(value))
            else:
                rendered = str(value)
            fields.append((label, rendered))
        return Listing(listing_id=f"{self._template.name}-{index}", fields=tuple(fields))
