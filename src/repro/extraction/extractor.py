"""The extractor: pages + wrapper → a relational source table."""

from __future__ import annotations

from typing import Sequence

from repro.extraction.pages import ResultPage
from repro.extraction.wrapper import SiteWrapper
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import infer_common_type, infer_type

__all__ = ["WebExtractor"]


class WebExtractor:
    """Turns result pages into a source table using a site wrapper."""

    def __init__(self, wrapper: SiteWrapper):
        self._wrapper = wrapper

    @property
    def wrapper(self) -> SiteWrapper:
        """The wrapper driving the extraction."""
        return self._wrapper

    def extract(self, pages: Sequence[ResultPage], *, table_name: str | None = None) -> Table:
        """Extract every listing into a table named after the site.

        Column types are inferred from the extracted values so that numeric
        fields (price, bedrooms) end up with numeric types even though the
        page renders them as text.
        """
        records = self._wrapper.extract_pages(pages)
        attributes = []
        for attribute in self._wrapper.attributes():
            observed = [infer_type(record.get(attribute)) for record in records]
            attributes.append(Attribute(attribute, infer_common_type(observed)))
        schema = Schema(table_name or self._wrapper.site, attributes)
        return Table.from_dicts(schema, records)
