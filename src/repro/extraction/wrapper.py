"""Wrappers: extraction rules mapping page labels to source attributes.

A :class:`SiteWrapper` is the inverse of a
:class:`~repro.extraction.pages.SiteTemplate`: it knows which page labels
correspond to which attributes of the extracted source table and how to
parse the rendered values. Wrappers can be written by hand or *induced*
from a template plus a handful of example listings
(:func:`induce_wrapper`), which stands in for DIADEM's automatic form/
result-page understanding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.extraction.pages import Listing, ResultPage

__all__ = ["ExtractionRule", "SiteWrapper", "induce_wrapper"]


def _parse_price(text: str) -> float | None:
    cleaned = re.sub(r"[£$,\s]", "", text)
    try:
        return float(cleaned)
    except ValueError:
        return None


def _parse_int(text: str) -> int | None:
    cleaned = re.sub(r"[^\d-]", "", text)
    if not cleaned or cleaned == "-":
        return None
    try:
        return int(cleaned)
    except ValueError:
        return None


def _parse_text(text: str) -> str | None:
    stripped = text.strip()
    return stripped or None


#: Default parsers per canonical attribute.
_DEFAULT_PARSERS: dict[str, Callable[[str], Any]] = {
    "price": _parse_price,
    "bedrooms": _parse_int,
    "crime": _parse_int,
    "crimerank": _parse_int,
}


@dataclass(frozen=True)
class ExtractionRule:
    """Extract ``attribute`` from the page field labelled ``label``."""

    attribute: str
    label: str
    parser: Callable[[str], Any] = _parse_text

    def apply(self, listing: Listing) -> Any:
        """The parsed value of this rule for one listing (None when absent)."""
        value = listing.field_dict().get(self.label)
        if value is None:
            return None
        return self.parser(value)


@dataclass(frozen=True)
class SiteWrapper:
    """A set of extraction rules for one site."""

    site: str
    rules: tuple[ExtractionRule, ...]

    def attributes(self) -> list[str]:
        """The attributes this wrapper extracts, in rule order."""
        return [rule.attribute for rule in self.rules]

    def extract_listing(self, listing: Listing) -> dict[str, Any]:
        """Extract one listing into an attribute → value record."""
        return {rule.attribute: rule.apply(listing) for rule in self.rules}

    def extract_pages(self, pages: Sequence[ResultPage]) -> list[dict[str, Any]]:
        """Extract every listing of every page."""
        records = []
        for page in pages:
            for listing in page.listings:
                records.append(self.extract_listing(listing))
        return records


def induce_wrapper(
    site: str,
    pages: Sequence[ResultPage],
    attribute_hints: Mapping[str, Sequence[str]] | None = None,
    *,
    min_label_frequency: float = 0.05,
) -> SiteWrapper:
    """Induce a wrapper from example pages.

    Labels occurring on at least ``min_label_frequency`` of listings become
    candidate fields. Each label is mapped to a canonical attribute by
    matching it against ``attribute_hints`` (attribute → acceptable label
    substrings); labels with no hint keep their own (normalised) name. This
    mirrors, at small scale, the ontology-driven field identification DIADEM
    performs.
    """
    hints = {
        attribute: [h.lower() for h in substrings]
        for attribute, substrings in (attribute_hints or {}).items()
    }
    label_counts: dict[str, int] = {}
    total_listings = 0
    for page in pages:
        for listing in page.listings:
            total_listings += 1
            for label, _value in listing.fields:
                label_counts[label] = label_counts.get(label, 0) + 1
    if total_listings == 0:
        return SiteWrapper(site, ())
    rules = []
    for label, count in sorted(label_counts.items()):
        if count / total_listings < min_label_frequency:
            continue
        attribute = _canonical_attribute(label, hints)
        parser = _DEFAULT_PARSERS.get(attribute, _parse_text)
        rules.append(ExtractionRule(attribute=attribute, label=label, parser=parser))
    return SiteWrapper(site, tuple(rules))


def _canonical_attribute(label: str, hints: Mapping[str, Sequence[str]]) -> str:
    lowered = label.lower()
    for attribute, substrings in hints.items():
        for substring in substrings:
            if substring in lowered:
                return attribute
    return re.sub(r"[^a-z0-9]+", "_", lowered).strip("_")
