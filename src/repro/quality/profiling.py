"""Data profiling: the statistics quality components are built on.

Profiling discovers per-column statistics (null fractions, distinct counts),
candidate keys, functional dependencies and inclusion dependencies. The CFD
learner uses the FD search; mapping generation uses inclusion dependencies
to decide whether two sources should be unioned or joined.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = [
    "ColumnProfile",
    "profile_column",
    "profile_table",
    "candidate_keys",
    "functional_dependency_confidence",
    "discover_functional_dependencies",
    "inclusion_dependency_coverage",
    "value_overlap",
]


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one column."""

    relation: str
    attribute: str
    row_count: int
    null_count: int
    distinct_count: int

    @property
    def completeness(self) -> float:
        """Fraction of non-null values."""
        if self.row_count == 0:
            return 1.0
        return 1.0 - self.null_count / self.row_count

    @property
    def uniqueness(self) -> float:
        """Distinct values over non-null values (1.0 for a key column)."""
        present = self.row_count - self.null_count
        if present == 0:
            return 0.0
        return self.distinct_count / present


def profile_column(table: Table, attribute: str) -> ColumnProfile:
    """Profile one column of ``table``."""
    values = table.column(attribute)
    nulls = sum(1 for value in values if is_null(value))
    distinct = len({value for value in values if not is_null(value)})
    return ColumnProfile(table.name, attribute, len(values), nulls, distinct)


def profile_table(table: Table) -> dict[str, ColumnProfile]:
    """Profile every column of ``table``."""
    return {
        attribute: profile_column(table, attribute) for attribute in table.schema.attribute_names
    }


def candidate_keys(table: Table, *, max_size: int = 2) -> list[tuple[str, ...]]:
    """Attribute combinations whose values uniquely identify rows.

    Only combinations up to ``max_size`` attributes are explored (minimal
    keys only: a superset of a discovered key is not reported).
    """
    names = table.schema.attribute_names
    found: list[tuple[str, ...]] = []
    rows = table.tuples()
    for size in range(1, max_size + 1):
        for combo in combinations(names, size):
            if any(set(existing) <= set(combo) for existing in found):
                continue
            positions = [table.schema.position(name) for name in combo]
            seen = set()
            unique = True
            for values in rows:
                key = tuple(values[p] for p in positions)
                if any(is_null(part) for part in key) or key in seen:
                    unique = False
                    break
                seen.add(key)
            if unique and rows:
                found.append(combo)
    return found


def functional_dependency_confidence(table: Table, lhs: Sequence[str], rhs: str) -> float:
    """Confidence of the FD ``lhs → rhs`` in ``table``.

    Confidence is the fraction of rows that would remain if, for every LHS
    value, only the most frequent RHS value were kept (1.0 = exact FD).
    Rows with NULL in LHS or RHS are ignored.
    """
    lhs_positions = [table.schema.position(name) for name in lhs]
    rhs_position = table.schema.position(rhs)
    groups: dict[tuple, dict] = defaultdict(lambda: defaultdict(int))
    considered = 0
    for values in table.tuples():
        key = tuple(values[p] for p in lhs_positions)
        value = values[rhs_position]
        if any(is_null(part) for part in key) or is_null(value):
            continue
        groups[key][value] += 1
        considered += 1
    if considered == 0:
        return 0.0
    kept = sum(max(counts.values()) for counts in groups.values())
    return kept / considered


def discover_functional_dependencies(
    table: Table, *, min_confidence: float = 0.98, max_lhs_size: int = 2
) -> list[tuple[tuple[str, ...], str, float]]:
    """Approximate FDs ``lhs → rhs`` with confidence above ``min_confidence``.

    Trivial dependencies (rhs ∈ lhs) and dependencies whose LHS is a
    superset of an already-discovered LHS for the same RHS are skipped.
    """
    names = table.schema.attribute_names
    discovered: list[tuple[tuple[str, ...], str, float]] = []
    for rhs in names:
        minimal_lhs: list[tuple[str, ...]] = []
        for size in range(1, max_lhs_size + 1):
            for combo in combinations([n for n in names if n != rhs], size):
                if any(set(existing) <= set(combo) for existing in minimal_lhs):
                    continue
                confidence = functional_dependency_confidence(table, combo, rhs)
                if confidence >= min_confidence:
                    minimal_lhs.append(combo)
                    discovered.append((combo, rhs, confidence))
    return discovered


def value_overlap(
    source: Table, source_attribute: str, target: Table, target_attribute: str
) -> float:
    """Fraction of distinct source values contained in the target column."""
    source_values = source.distinct_values(source_attribute)
    if not source_values:
        return 0.0
    target_values = target.distinct_values(target_attribute)
    return len(source_values & target_values) / len(source_values)


def inclusion_dependency_coverage(source: Table, target: Table) -> dict[tuple[str, str], float]:
    """Pairwise inclusion coverage between all column pairs of two tables."""
    coverage: dict[tuple[str, str], float] = {}
    for source_attribute in source.schema.attribute_names:
        for target_attribute in target.schema.attribute_names:
            coverage[(source_attribute, target_attribute)] = value_overlap(
                source, source_attribute, target, target_attribute
            )
    return coverage
