"""Mergeable sufficient statistics for the four quality criteria.

Every criterion in :mod:`repro.quality.metrics` is a *decomposable
aggregate*: the score of a table is a pure function of per-row
contributions that add (and subtract) independently. This module captures
those contributions as picklable accumulators — per-attribute null/row
counts for completeness, checked/correct counters over a keyed reference
index for accuracy, per-CFD checkable/violation counters for consistency,
and a covered-key multiset over the master-key set for relevance — so the
feedback loop can *patch* a metric report when a handful of rows change
instead of rescanning the whole table (the standard self-maintainable-view
trick from incremental view maintenance, applied to the data-quality layer).

Contract: for any sequence of ``add_row`` / ``remove_row`` / ``replace_row``
calls that ends in row multiset *R*, ``finalise()`` is **bit-identical** to
:func:`repro.quality.metrics.evaluate_quality` over a table holding *R* —
the scan functions in ``metrics.py`` are themselves implemented as "build
stats, then finalise", and the property tests in
``tests/test_quality_stats.py`` check the equality over random tables and
random deltas. ``merge`` combines accumulators built over disjoint shards
(associatively), which is what lets the batch runner evaluate per-shard and
still report exact whole-run metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.quality.cfd import CFD
from repro.relational.keys import normalise_key_tuple
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = [
    "CompletenessStats",
    "AccuracyStats",
    "ConsistencyStats",
    "RelevanceStats",
    "AnswerAgreementStats",
    "QualityStats",
    "build_stats",
    "build_reference_index",
    "build_master_keys",
    "cell_equal",
]


def build_reference_index(reference: Table, key: Sequence[str]) -> dict[tuple, dict[str, Any]]:
    """Normalised key tuple → reference row (first occurrence wins)."""
    reference_index: dict[tuple, dict[str, Any]] = {}
    for row in reference.rows():
        index_key = normalise_key_tuple(row[k] for k in key)
        if any(part is None for part in index_key):
            continue
        reference_index.setdefault(index_key, row.to_dict())
    return reference_index


def build_master_keys(master: Table, key: Sequence[str]) -> frozenset:
    """The master table's normalised key set (NULL-bearing keys excluded)."""
    master_keys = set()
    for row in master.rows():
        master_key = normalise_key_tuple(row.get(k) for k in key)
        if any(part is None for part in master_key):
            continue
        master_keys.add(master_key)
    return frozenset(master_keys)


def cell_equal(left: Any, right: Any) -> bool:
    """Accuracy's cell comparison: trimmed case-folded strings, 1e-9 floats."""
    if is_null(left) or is_null(right):
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(float(left) - float(right)) < 1e-9
    return left == right


def _positions(row_names: Sequence[str], wanted: Iterable[str]) -> tuple[int | None, ...]:
    """Position of each wanted attribute in the row layout (None = absent).

    Absent attributes contribute NULL, mirroring ``row.get(name)`` in the
    scan implementations.
    """
    index = {name: position for position, name in enumerate(row_names)}
    return tuple(index.get(name) for name in wanted)


class _Mismatch(ValueError):
    """Two accumulators with different configurations cannot merge."""


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise _Mismatch(f"cannot merge quality stats: {what} differ")


@dataclass
class CompletenessStats:
    """Per-attribute null and row counts.

    ``row_names`` is the full attribute layout of incoming row tuples;
    ``attributes`` the subset actually scored (bookkeeping ``_``-prefixed
    columns are excluded by the builders).
    """

    row_names: tuple[str, ...]
    attributes: tuple[str, ...]
    row_count: int = 0
    null_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.attributes:
            self.null_counts.setdefault(name, 0)
        self._tracked = tuple(
            (name, position)
            for name, position in zip(self.attributes, _positions(self.row_names, self.attributes))
            if position is not None
        )

    def __getstate__(self):
        return {
            "row_names": self.row_names,
            "attributes": self.attributes,
            "row_count": self.row_count,
            "null_counts": self.null_counts,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    def add_row(self, values: Sequence[Any]) -> None:
        """Count one row's contribution."""
        self.row_count += 1
        counts = self.null_counts
        for name, position in self._tracked:
            if is_null(values[position]):
                counts[name] += 1

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one previously added row's contribution."""
        self.row_count -= 1
        counts = self.null_counts
        for name, position in self._tracked:
            if is_null(values[position]):
                counts[name] -= 1

    def merge(self, other: "CompletenessStats") -> None:
        """Fold another shard's counters into this one."""
        _require(self.row_names == other.row_names, "row layouts")
        _require(self.attributes == other.attributes, "completeness attributes")
        self.row_count += other.row_count
        for name, count in other.null_counts.items():
            self.null_counts[name] = self.null_counts.get(name, 0) + count

    def attribute_completeness(self, attribute: str) -> float:
        """Fraction of non-null values in one tracked attribute."""
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.null_counts[attribute] / self.row_count

    def score(
        self,
        attributes: Sequence[str] | None = None,
        weights: Mapping[str, float] | None = None,
    ) -> float:
        """(Weighted) mean completeness, exactly as ``table_completeness``."""
        names = list(attributes) if attributes is not None else list(self.attributes)
        if not names:
            return 0.0
        if weights:
            total_weight = sum(weights.get(name, 0.0) for name in names)
            if total_weight > 0:
                weighted = sum(
                    self.attribute_completeness(name) * weights.get(name, 0.0) for name in names
                )
                return weighted / total_weight
        return sum(self.attribute_completeness(name) for name in names) / len(names)


@dataclass
class AccuracyStats:
    """Checked/correct cell counters over a keyed reference index."""

    row_names: tuple[str, ...]
    key: tuple[str, ...]
    #: Attributes compared against the reference (empty → uninformative 0.0).
    names: tuple[str, ...]
    #: Normalised key tuple → reference row (first occurrence wins).
    reference_index: dict[tuple, dict[str, Any]]
    checked: int = 0
    correct: int = 0

    def __post_init__(self) -> None:
        self._key_positions = _positions(self.row_names, self.key)
        self._name_positions = _positions(self.row_names, self.names)

    def __getstate__(self):
        return {
            "row_names": self.row_names,
            "key": self.key,
            "names": self.names,
            "reference_index": self.reference_index,
            "checked": self.checked,
            "correct": self.correct,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    @classmethod
    def from_reference(
        cls,
        row_names: Sequence[str],
        reference: Table,
        key: Sequence[str],
        attributes: Sequence[str] | None = None,
        *,
        reference_index: dict[tuple, dict[str, Any]] | None = None,
    ) -> "AccuracyStats":
        """Build (or adopt) the keyed reference index; counters start at zero.

        ``reference_index`` lets callers that evaluate many relations
        against one reference share a single index (it depends only on the
        reference table and the key, never on the evaluated relation).
        """
        row_names = tuple(row_names)
        key = tuple(key)
        shared = [
            name
            for name in row_names
            if name in reference.schema and name not in key and not name.startswith("_")
        ]
        names = tuple(
            name
            for name in (attributes if attributes is not None else shared)
            if name in reference.schema
        )
        if reference_index is None:
            # No comparable attributes → the value is 0.0 whatever the index
            # holds; skip the O(|reference|) build entirely.
            reference_index = build_reference_index(reference, key) if names else {}
        return cls(row_names=row_names, key=key, names=names, reference_index=reference_index)

    def _contribution(self, values: Sequence[Any]) -> tuple[int, int]:
        """(checked, correct) cells this row contributes."""
        index_key = normalise_key_tuple(
            values[position] if position is not None else None
            for position in self._key_positions
        )
        if any(part is None for part in index_key):
            return 0, 0
        expected_row = self.reference_index.get(index_key)
        if expected_row is None:
            return 0, 0
        checked = 0
        correct = 0
        for name, position in zip(self.names, self._name_positions):
            expected = expected_row.get(name)
            if is_null(expected):
                continue
            actual = values[position] if position is not None else None
            if is_null(actual):
                # Missing values are completeness's concern, not accuracy's.
                continue
            checked += 1
            if cell_equal(actual, expected):
                correct += 1
        return checked, correct

    def add_row(self, values: Sequence[Any]) -> None:
        """Count one row's contribution."""
        checked, correct = self._contribution(values)
        self.checked += checked
        self.correct += correct

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one previously added row's contribution."""
        checked, correct = self._contribution(values)
        self.checked -= checked
        self.correct -= correct

    def merge(self, other: "AccuracyStats") -> None:
        """Fold another shard's counters into this one."""
        _require(self.row_names == other.row_names, "row layouts")
        _require(self.key == other.key, "accuracy keys")
        _require(self.names == other.names, "accuracy attributes")
        self.checked += other.checked
        self.correct += other.correct

    def value(self) -> float:
        """Fraction of checked cells agreeing with the reference."""
        if not self.names:
            return 0.0
        if self.checked == 0:
            return 0.0
        return self.correct / self.checked


@dataclass
class ConsistencyStats:
    """Per-CFD checkable and violation counters (with witness indexes).

    One pass over the rows evaluates ``applies_to`` once per (row, CFD)
    pair and folds the checkable-cell count into the violation check —
    the double scan the monolithic ``consistency()`` used to do.
    """

    row_names: tuple[str, ...]
    cfds: tuple[CFD, ...]
    #: cfd_id → witness index, as produced by the CFD learner.
    witnesses: dict[str, dict]
    row_count: int = 0
    #: Counters aligned positionally with ``cfds`` (ids may not be unique
    #: for arbitrary caller-supplied dependency lists).
    checkable: list[int] = field(default_factory=list)
    violations: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.checkable:
            self.checkable = [0] * len(self.cfds)
        if not self.violations:
            self.violations = [0] * len(self.cfds)
        self._witness_of = tuple(self.witnesses.get(cfd.cfd_id) for cfd in self.cfds)

    def __getstate__(self):
        return {
            "row_names": self.row_names,
            "cfds": self.cfds,
            "witnesses": self.witnesses,
            "row_count": self.row_count,
            "checkable": self.checkable,
            "violations": self.violations,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    def add_row(self, values: Sequence[Any]) -> None:
        """Count one row's contribution."""
        self.row_count += 1
        if not self.cfds:
            return
        row = dict(zip(self.row_names, values))
        for position, cfd in enumerate(self.cfds):
            if not cfd.applies_to(row):
                continue
            self.checkable[position] += 1
            if not cfd.check_applicable(row, witness=self._witness_of[position]):
                self.violations[position] += 1

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one previously added row's contribution."""
        self.row_count -= 1
        if not self.cfds:
            return
        row = dict(zip(self.row_names, values))
        for position, cfd in enumerate(self.cfds):
            if not cfd.applies_to(row):
                continue
            self.checkable[position] -= 1
            if not cfd.check_applicable(row, witness=self._witness_of[position]):
                self.violations[position] -= 1

    def merge(self, other: "ConsistencyStats") -> None:
        """Fold another shard's counters into this one."""
        _require(self.row_names == other.row_names, "row layouts")
        _require(self.cfds == other.cfds, "CFD lists")
        self.row_count += other.row_count
        for position in range(len(self.cfds)):
            self.checkable[position] += other.checkable[position]
            self.violations[position] += other.violations[position]

    def value(self) -> float:
        """1 − (violating cells / checkable cells), 1.0 when nothing checks."""
        if not self.cfds or self.row_count == 0:
            return 1.0
        total_checkable = sum(self.checkable)
        if total_checkable == 0:
            return 1.0
        return max(0.0, 1.0 - sum(self.violations) / total_checkable)


@dataclass
class RelevanceStats:
    """Master-key set plus a multiset of covered keys.

    Coverage must survive removals exactly, so covered keys carry a count
    of contributing rows — a key stays covered while any row still
    provides it.
    """

    row_names: tuple[str, ...]
    key: tuple[str, ...]
    #: Rows in the master table (the empty-master → 1.0 rule needs it).
    master_rows: int
    master_keys: frozenset
    covered: dict[tuple, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._key_positions = _positions(self.row_names, self.key)

    def __getstate__(self):
        return {
            "row_names": self.row_names,
            "key": self.key,
            "master_rows": self.master_rows,
            "master_keys": self.master_keys,
            "covered": self.covered,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    @classmethod
    def from_master(
        cls,
        row_names: Sequence[str],
        master: Table,
        key: Sequence[str],
        *,
        master_keys: frozenset | None = None,
    ) -> "RelevanceStats":
        """Build (or adopt) the master-key set; the covered multiset starts empty."""
        key = tuple(key)
        if master_keys is None:
            master_keys = build_master_keys(master, key)
        return cls(
            row_names=tuple(row_names),
            key=key,
            master_rows=len(master),
            master_keys=master_keys,
        )

    def _row_key(self, values: Sequence[Any]) -> tuple:
        return normalise_key_tuple(
            values[position] if position is not None else None
            for position in self._key_positions
        )

    def add_row(self, values: Sequence[Any]) -> None:
        """Count one row's contribution."""
        row_key = self._row_key(values)
        if row_key in self.master_keys:
            self.covered[row_key] = self.covered.get(row_key, 0) + 1

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one previously added row's contribution."""
        row_key = self._row_key(values)
        if row_key in self.master_keys:
            remaining = self.covered.get(row_key, 0) - 1
            if remaining > 0:
                self.covered[row_key] = remaining
            else:
                self.covered.pop(row_key, None)

    def merge(self, other: "RelevanceStats") -> None:
        """Fold another shard's covered multiset into this one."""
        _require(self.row_names == other.row_names, "row layouts")
        _require(self.key == other.key, "relevance keys")
        _require(self.master_keys == other.master_keys, "master key sets")
        self.master_rows = max(self.master_rows, other.master_rows)
        for row_key, count in other.covered.items():
            self.covered[row_key] = self.covered.get(row_key, 0) + count

    def value(self) -> float:
        """Fraction of master entities covered."""
        if self.master_rows == 0:
            return 1.0
        if not self.master_keys:
            return 1.0
        return len(self.covered) / len(self.master_keys)


@dataclass
class AnswerAgreementStats:
    """Certain-vs-repaired answer agreement across a query workload.

    Unlike the row-fed accumulators this one is fed by
    ``Wrangler.query(mode="both")`` observations: per query it keeps the
    Jaccard sufficient statistic (``|certain ∩ repaired|``,
    ``|certain ∪ repaired|``) keyed by the query text, so re-running a
    workload after feedback *replaces* a query's contribution instead of
    double-counting it. The value is the micro-averaged overlap — low
    agreement flags queries whose answers still hinge on unrepaired
    conflicts, which is exactly where the pay-as-you-go loop should spend
    its next feedback budget.
    """

    #: Query text → (intersection size, union size).
    entries: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def queries(self) -> int:
        """Number of distinct queries observed."""
        return len(self.entries)

    def observe(
        self, query: str, certain: Iterable[tuple], repaired: Iterable[tuple]
    ) -> None:
        """Record (or refresh) one query's certain and repaired answers."""
        certain_set = {tuple(row) for row in certain}
        repaired_set = {tuple(row) for row in repaired}
        self.entries[query] = (
            len(certain_set & repaired_set),
            len(certain_set | repaired_set),
        )

    def forget(self, query: str) -> None:
        """Drop a query's contribution (workload shrank)."""
        self.entries.pop(query, None)

    def merge(self, other: "AnswerAgreementStats") -> None:
        """Adopt another accumulator's observations (theirs win on overlap)."""
        self.entries.update(other.entries)

    def value(self) -> float:
        """Micro-averaged Jaccard agreement; 1.0 with nothing observed."""
        if not self.entries:
            return 1.0
        agree = sum(intersection for intersection, _union in self.entries.values())
        total = sum(union for _intersection, union in self.entries.values())
        if total == 0:
            # Every query returned no answers in either mode: full agreement.
            return 1.0
        return agree / total


@dataclass
class QualityStats:
    """The four criterion accumulators for one relation, as one unit.

    ``accuracy`` / ``relevance`` are None when the corresponding data
    context is unavailable; :meth:`finalise` then reports the neutral 0.5,
    mirroring :func:`repro.quality.metrics.evaluate_quality`.
    """

    relation: str
    attribute_names: tuple[str, ...]
    completeness: CompletenessStats
    consistency: ConsistencyStats
    accuracy: AccuracyStats | None = None
    relevance: RelevanceStats | None = None
    completeness_weights: dict[str, float] | None = None
    #: Query-workload agreement; attached lazily by ``Wrangler.query`` —
    #: row-fed paths never create or touch it, keeping ``finalise`` on the
    #: four classic criteria bit-identical to ``evaluate_quality``.
    answer_agreement: AnswerAgreementStats | None = None

    @property
    def row_count(self) -> int:
        """Rows currently reflected in the accumulators."""
        return self.completeness.row_count

    @classmethod
    def for_schema(
        cls,
        schema,
        *,
        relation: str | None = None,
        reference: Table | None = None,
        reference_key: Sequence[str] = (),
        cfds: Iterable[CFD] = (),
        witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
        master: Table | None = None,
        master_key: Sequence[str] = (),
        completeness_weights: Mapping[str, float] | None = None,
        reference_index: dict[tuple, dict[str, Any]] | None = None,
        master_keys: frozenset | None = None,
    ) -> "QualityStats":
        """Empty accumulators for tables shaped like ``schema``.

        ``reference_index`` / ``master_keys`` adopt prebuilt context indexes
        (see :func:`build_reference_index` / :func:`build_master_keys`) so
        one evaluation context can be shared across many relations' stats.
        """
        names = tuple(schema.attribute_names)
        tracked = tuple(name for name in names if not name.startswith("_"))
        accuracy = None
        if reference is not None and reference_key:
            accuracy = AccuracyStats.from_reference(
                names, reference, tuple(reference_key), reference_index=reference_index
            )
        relevance = None
        if master is not None and master_key:
            relevance = RelevanceStats.from_master(
                names, master, tuple(master_key), master_keys=master_keys
            )
        return cls(
            relation=relation if relation is not None else schema.name,
            attribute_names=names,
            completeness=CompletenessStats(row_names=names, attributes=tracked),
            consistency=ConsistencyStats(
                row_names=names, cfds=tuple(cfds), witnesses=dict(witnesses or {})
            ),
            accuracy=accuracy,
            relevance=relevance,
            completeness_weights=dict(completeness_weights) if completeness_weights else None,
        )

    # -- the accumulator interface -------------------------------------------

    def add_row(self, values: Sequence[Any]) -> None:
        """Add one row's contribution to every criterion."""
        self.completeness.add_row(values)
        self.consistency.add_row(values)
        if self.accuracy is not None:
            self.accuracy.add_row(values)
        if self.relevance is not None:
            self.relevance.add_row(values)

    def remove_row(self, values: Sequence[Any]) -> None:
        """Retract one previously added row from every criterion."""
        self.completeness.remove_row(values)
        self.consistency.remove_row(values)
        if self.accuracy is not None:
            self.accuracy.remove_row(values)
        if self.relevance is not None:
            self.relevance.remove_row(values)

    def replace_row(self, old_values: Sequence[Any], new_values: Sequence[Any]) -> None:
        """Swap one row's contribution for another's."""
        if tuple(old_values) == tuple(new_values):
            return
        self.remove_row(old_values)
        self.add_row(new_values)

    def add_table(self, table: Table) -> None:
        """Add every row of ``table``."""
        for values in table.tuples():
            self.add_row(values)

    def merge(self, other: "QualityStats") -> None:
        """Fold another shard's accumulators into this one (associative)."""
        _require(self.attribute_names == other.attribute_names, "row layouts")
        _require(
            (self.accuracy is None) == (other.accuracy is None), "accuracy configurations"
        )
        _require(
            (self.relevance is None) == (other.relevance is None), "relevance configurations"
        )
        _require(
            self.completeness_weights == other.completeness_weights, "completeness weights"
        )
        self.completeness.merge(other.completeness)
        self.consistency.merge(other.consistency)
        if self.accuracy is not None and other.accuracy is not None:
            self.accuracy.merge(other.accuracy)
        if self.relevance is not None and other.relevance is not None:
            self.relevance.merge(other.relevance)
        if other.answer_agreement is not None:
            if self.answer_agreement is None:
                self.answer_agreement = AnswerAgreementStats(
                    entries=dict(other.answer_agreement.entries)
                )
            else:
                self.answer_agreement.merge(other.answer_agreement)

    # -- finalisation ---------------------------------------------------------

    def finalise(self):
        """Derive the :class:`~repro.quality.metrics.QualityReport`.

        Bit-identical to ``evaluate_quality`` over the row multiset the
        accumulators currently reflect (the checked contract).
        """
        from repro.quality.metrics import QualityReport

        completeness_by_attribute = {
            name: self.completeness.attribute_completeness(name)
            for name in self.completeness.attributes
        }
        return QualityReport(
            relation=self.relation,
            completeness=self.completeness.score(weights=self.completeness_weights),
            accuracy=self.accuracy.value() if self.accuracy is not None else 0.5,
            consistency=self.consistency.value(),
            relevance=self.relevance.value() if self.relevance is not None else 0.5,
            attribute_completeness=completeness_by_attribute,
            row_count=self.completeness.row_count,
            answer_agreement=(
                self.answer_agreement.value()
                if self.answer_agreement is not None
                else None
            ),
        )


def build_stats(
    table: Table,
    *,
    reference: Table | None = None,
    reference_key: Sequence[str] = (),
    cfds: Iterable[CFD] = (),
    witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
    master: Table | None = None,
    master_key: Sequence[str] = (),
    completeness_weights: Mapping[str, float] | None = None,
    reference_index: dict[tuple, dict[str, Any]] | None = None,
    master_keys: frozenset | None = None,
) -> QualityStats:
    """Accumulate ``table``'s rows into fresh :class:`QualityStats`.

    Same inputs as :func:`repro.quality.metrics.evaluate_quality`; that
    function is now literally ``build_stats(...).finalise()``.
    """
    stats = QualityStats.for_schema(
        table.schema,
        relation=table.name,
        reference=reference,
        reference_key=reference_key,
        cfds=cfds,
        witnesses=witnesses,
        master=master,
        master_key=master_key,
        completeness_weights=completeness_weights,
        reference_index=reference_index,
        master_keys=master_keys,
    )
    stats.add_table(table)
    return stats
