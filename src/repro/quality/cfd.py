"""Conditional functional dependencies (CFDs).

A CFD is a functional dependency ``LHS → RHS`` extended with a *pattern
tuple* that restricts where it applies and/or fixes constant values
(Fan & Geerts, "Foundations of Data Quality Management" — reference [4] of
the paper). The paper uses CFDs learned from data-context reference data to
establish the consistency of address information and to repair mapping
results.

The pattern tuple maps attributes to either the wildcard ``"_"`` or a
constant. Attributes of the LHS with constants restrict applicability;
an RHS constant prescribes the value, an RHS wildcard requires agreement
with the dependency's witness (handled by the repair module via reference
lookups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.relational.keys import normalise_key_tuple
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["WILDCARD", "CFD", "Violation", "find_violations"]

#: Pattern wildcard.
WILDCARD = "_"


@dataclass(frozen=True)
class CFD:
    """One conditional functional dependency with a single pattern tuple."""

    cfd_id: str
    relation: str
    lhs: tuple[str, ...]
    rhs: str
    #: Pattern over LHS attributes: attribute → constant or ``WILDCARD``.
    lhs_pattern: tuple[tuple[str, Any], ...] = ()
    #: RHS pattern value: a constant, or ``WILDCARD`` for variable CFDs.
    rhs_pattern: Any = WILDCARD
    #: Fraction of reference tuples supporting the dependency.
    support: float = 1.0
    #: Confidence of the underlying FD in the reference data.
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ValueError("a CFD needs at least one LHS attribute")
        if self.rhs in self.lhs:
            raise ValueError(f"CFD RHS {self.rhs!r} cannot also be a LHS attribute")
        pattern_attrs = {name for name, _ in self.lhs_pattern}
        unknown = pattern_attrs - set(self.lhs)
        if unknown:
            raise ValueError(f"pattern mentions non-LHS attributes: {sorted(unknown)}")

    @property
    def is_constant(self) -> bool:
        """True when the RHS pattern prescribes a constant value."""
        return self.rhs_pattern != WILDCARD

    @property
    def is_variable(self) -> bool:
        """True when the RHS pattern is the wildcard (classic FD semantics)."""
        return not self.is_constant

    def lhs_pattern_dict(self) -> dict[str, Any]:
        """The LHS pattern as a dictionary (missing attributes are wildcards)."""
        pattern = {name: WILDCARD for name in self.lhs}
        pattern.update(dict(self.lhs_pattern))
        return pattern

    def applies_to(self, row: Mapping[str, Any]) -> bool:
        """Whether the pattern tuple's LHS constants match ``row``.

        Rows with NULL in any LHS attribute are out of scope (they cannot
        witness or violate the dependency).
        """
        for attribute in self.lhs:
            if attribute not in row or is_null(row[attribute]):
                return False
        for attribute, constant in self.lhs_pattern:
            if constant == WILDCARD:
                continue
            if not _values_equal(row[attribute], constant):
                return False
        return True

    def lhs_values(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        """The row's LHS value combination, normalised for witness lookups."""
        return normalise_key_tuple(row[attribute] for attribute in self.lhs)

    def check_row(
        self, row: Mapping[str, Any], *, witness: Mapping[tuple, Any] | None = None
    ) -> bool:
        """Whether ``row`` satisfies this CFD.

        For constant CFDs the RHS must equal the prescribed constant. For
        variable CFDs a ``witness`` index (LHS values → expected RHS value,
        usually built from reference data) decides; without a witness the
        row is trivially satisfied.
        """
        if not self.applies_to(row):
            return True
        return self.check_applicable(row, witness=witness)

    def check_applicable(
        self, row: Mapping[str, Any], *, witness: Mapping[tuple, Any] | None = None
    ) -> bool:
        """:meth:`check_row` for a row already known to pass :meth:`applies_to`.

        Lets single-pass consumers (the consistency sufficient statistics)
        count checkable cells and violations without evaluating the pattern
        match twice per (row, CFD) pair.
        """
        value = row.get(self.rhs)
        if self.is_constant:
            return _values_equal(value, self.rhs_pattern)
        if witness is None:
            return True
        expected = witness.get(self.lhs_values(row))
        if expected is None:
            return True
        if is_null(value):
            return False
        return _values_equal(value, expected)

    def expected_value(
        self, row: Mapping[str, Any], *, witness: Mapping[tuple, Any] | None = None
    ) -> Any:
        """The value the RHS *should* have for ``row`` (None when unknown)."""
        if not self.applies_to(row):
            return None
        if self.is_constant:
            return self.rhs_pattern
        if witness is None:
            return None
        return witness.get(self.lhs_values(row))

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``([postcode] -> street, (_ || _))``."""
        lhs_pattern = self.lhs_pattern_dict()
        lhs_part = ", ".join(f"{name}={lhs_pattern[name]}" for name in self.lhs)
        return f"{self.relation}: [{lhs_part}] -> {self.rhs}={self.rhs_pattern}"

    def to_fact_fields(self) -> tuple[str, str, str, str, float]:
        """Fields for the ``cfd`` KB fact (id, relation, lhs, rhs, support)."""
        lhs_pattern = self.lhs_pattern_dict()
        lhs_text = ",".join(f"{name}:{lhs_pattern[name]}" for name in self.lhs)
        rhs_text = f"{self.rhs}:{self.rhs_pattern}"
        return self.cfd_id, self.relation, lhs_text, rhs_text, self.support


@dataclass(frozen=True)
class Violation:
    """One row failing one CFD."""

    cfd_id: str
    relation: str
    row_index: int
    attribute: str
    actual: Any
    expected: Any

    def __str__(self) -> str:
        return (
            f"{self.relation}[{self.row_index}].{self.attribute}: "
            f"{self.actual!r} (expected {self.expected!r}, cfd {self.cfd_id})"
        )


def find_violations(
    table: Table,
    cfds: Iterable[CFD],
    *,
    witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
) -> list[Violation]:
    """All violations of ``cfds`` in ``table``.

    ``witnesses`` maps CFD ids to witness indexes (LHS values → expected RHS
    value) for variable CFDs; they are typically built from reference data
    by :mod:`repro.quality.cfd_learning`.
    """
    witnesses = witnesses or {}
    violations: list[Violation] = []
    for cfd in cfds:
        witness = witnesses.get(cfd.cfd_id)
        for index, row in enumerate(table.rows()):
            if cfd.check_row(row, witness=witness):
                continue
            violations.append(
                Violation(
                    cfd_id=cfd.cfd_id,
                    relation=table.name,
                    row_index=index,
                    attribute=cfd.rhs,
                    actual=row.get(cfd.rhs),
                    expected=cfd.expected_value(row, witness=witness),
                )
            )
    return violations


def _values_equal(left: Any, right: Any) -> bool:
    if is_null(left) or is_null(right):
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right
