"""CFD-based data repair.

Paper §3 step 2: once CFDs have been learned from reference data "it is now
also possible … to carry out repairs to the mapping results". The repairer
fixes two kinds of defect:

- *violations*: a row's RHS value disagrees with the CFD's expected value
  (constant pattern or reference witness) — the value is replaced;
- *missing values*: the RHS is NULL but the CFD (via its witness) knows the
  expected value — the value is imputed.

Every change is reported as a :class:`RepairAction` so the knowledge base
can record ``repair`` facts and the trace stays browsable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.provenance.model import OPERATOR_REPAIR, ProvenanceStore
from repro.quality.cfd import CFD
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["RepairAction", "RepairResult", "CFDRepairer"]


@dataclass(frozen=True)
class RepairAction:
    """One cell change performed by the repairer."""

    relation: str
    row_index: int
    attribute: str
    old_value: Any
    new_value: Any
    cfd_id: str
    #: ``violation`` (wrong value replaced) or ``imputation`` (NULL filled).
    kind: str

    def __str__(self) -> str:
        return (
            f"{self.relation}[{self.row_index}].{self.attribute}: "
            f"{self.old_value!r} -> {self.new_value!r} ({self.kind}, {self.cfd_id})"
        )


@dataclass
class RepairResult:
    """The repaired table plus the list of actions taken."""

    table: Table
    actions: list[RepairAction]

    @property
    def repaired_cells(self) -> int:
        """Number of cells changed."""
        return len(self.actions)

    def actions_of_kind(self, kind: str) -> list[RepairAction]:
        """Only violations or only imputations."""
        return [action for action in self.actions if action.kind == kind]


class CFDRepairer:
    """Applies CFDs (with witnesses) to repair a table."""

    def __init__(
        self,
        *,
        impute_missing: bool = True,
        fix_violations: bool = True,
        min_confidence: float = 0.0,
    ):
        self._impute_missing = impute_missing
        self._fix_violations = fix_violations
        self._min_confidence = min_confidence

    def repair(
        self,
        table: Table,
        cfds: Iterable[CFD],
        *,
        witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
        provenance: ProvenanceStore | None = None,
    ) -> RepairResult:
        """Return a repaired copy of ``table`` and the actions performed.

        CFDs are applied in decreasing confidence order; once a cell has been
        repaired by one CFD it is not touched again by a weaker one. With a
        provenance store each repaired cell records a lineage override: the
        current value no longer comes from the mapped source row but from
        the CFD (and its witness reference data) that rewrote it.
        """
        witnesses = witnesses or {}
        ordered = sorted(
            (cfd for cfd in cfds if cfd.confidence >= self._min_confidence),
            key=lambda cfd: (-cfd.confidence, -cfd.support, cfd.cfd_id),
        )
        rows = [list(values) for values in table.tuples()]
        schema = table.schema
        actions: list[RepairAction] = []
        touched: set[tuple[int, str]] = set()

        for cfd in ordered:
            if cfd.rhs not in schema:
                continue
            if any(attribute not in schema for attribute in cfd.lhs):
                continue
            rhs_position = schema.position(cfd.rhs)
            witness = witnesses.get(cfd.cfd_id)
            for row_index, values in enumerate(rows):
                if (row_index, cfd.rhs) in touched:
                    continue
                row = dict(zip(schema.attribute_names, values))
                if not cfd.applies_to(row):
                    continue
                expected = cfd.expected_value(row, witness=witness)
                if expected is None or is_null(expected):
                    continue
                current = values[rhs_position]
                if is_null(current):
                    if not self._impute_missing:
                        continue
                    kind = "imputation"
                elif not _values_equal(current, expected):
                    if not self._fix_violations:
                        continue
                    kind = "violation"
                else:
                    continue
                values[rhs_position] = expected
                touched.add((row_index, cfd.rhs))
                actions.append(
                    RepairAction(
                        relation=table.name,
                        row_index=row_index,
                        attribute=cfd.rhs,
                        old_value=current,
                        new_value=expected,
                        cfd_id=cfd.cfd_id,
                        kind=kind,
                    )
                )
        repaired = table.replace_rows([tuple(values) for values in rows])
        if provenance is not None and provenance.enabled and actions:
            row_keys = table.row_keys()
            for action in actions:
                provenance.record_cell(
                    table.name,
                    row_keys[action.row_index],
                    action.attribute,
                    operator=OPERATOR_REPAIR,
                    witnesses=(),
                    detail=f"{action.cfd_id}:{action.kind}",
                )
        return RepairResult(table=repaired, actions=actions)


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right
