"""Quality metrics: completeness, accuracy, consistency, relevance.

Paper §2.3: "the completeness of the crimerank attribute can be estimated as
the fraction of non-null values", while "determining the consistency of the
property table needs additional information" — CFDs learned from reference
data. Accuracy is measured against reference/master/ground-truth data, and
relevance as coverage of the entities the user cares about (master data).

All metrics return values in [0, 1]; higher is better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.quality.cfd import CFD, find_violations
from repro.relational.keys import normalise_key_tuple
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = [
    "attribute_completeness",
    "table_completeness",
    "accuracy_against_reference",
    "attribute_accuracy",
    "consistency",
    "relevance",
    "QualityReport",
    "evaluate_quality",
]


def attribute_completeness(table: Table, attribute: str) -> float:
    """Fraction of non-null values in one attribute."""
    if len(table) == 0:
        return 0.0
    return 1.0 - table.null_count(attribute) / len(table)


def table_completeness(
    table: Table,
    attributes: Sequence[str] | None = None,
    weights: Mapping[str, float] | None = None,
) -> float:
    """(Weighted) mean completeness over ``attributes``.

    By default all attributes are considered except bookkeeping columns
    (names starting with ``_``, e.g. the provenance/row-id columns added by
    mapping execution).
    """
    if attributes is not None:
        names = list(attributes)
    else:
        names = [n for n in table.schema.attribute_names if not n.startswith("_")]
    if not names:
        return 0.0
    if weights:
        total_weight = sum(weights.get(name, 0.0) for name in names)
        if total_weight > 0:
            weighted = sum(
                attribute_completeness(table, name) * weights.get(name, 0.0) for name in names
            )
            return weighted / total_weight
    return sum(attribute_completeness(table, name) for name in names) / len(names)


def accuracy_against_reference(
    table: Table, reference: Table, key: Sequence[str], attributes: Sequence[str] | None = None
) -> float:
    """Fraction of checked cells agreeing with ``reference``.

    Rows are joined to the reference on ``key``; for each joined row, each of
    ``attributes`` (default: all shared non-key attributes) is compared.
    Cells whose key has no reference counterpart are not counted (accuracy
    measures correctness of what can be checked, completeness handles
    missingness).
    """
    shared = [
        name
        for name in table.schema.attribute_names
        if name in reference.schema and name not in key and not name.startswith("_")
    ]
    names = [
        name
        for name in (attributes if attributes is not None else shared)
        if name in reference.schema
    ]
    if not names:
        return 0.0
    reference_index: dict[tuple, dict[str, Any]] = {}
    for row in reference.rows():
        index_key = normalise_key_tuple(row[k] for k in key)
        if any(part is None for part in index_key):
            continue
        reference_index.setdefault(index_key, row.to_dict())
    checked = 0
    correct = 0
    for row in table.rows():
        index_key = normalise_key_tuple(row.get(k) for k in key)
        if any(part is None for part in index_key):
            continue
        expected = reference_index.get(index_key)
        if expected is None:
            continue
        for name in names:
            expected_value = expected.get(name)
            if is_null(expected_value):
                continue
            actual = row.get(name)
            if is_null(actual):
                # Missing values are completeness's concern, not accuracy's.
                continue
            checked += 1
            if _cell_equal(actual, expected_value):
                correct += 1
    if checked == 0:
        return 0.0
    return correct / checked


def attribute_accuracy(table: Table, reference: Table, key: Sequence[str], attribute: str) -> float:
    """Accuracy of a single attribute against reference data."""
    return accuracy_against_reference(table, reference, key, [attribute])


def consistency(
    table: Table, cfds: Iterable[CFD], *, witnesses: Mapping[str, Mapping[tuple, Any]] | None = None
) -> float:
    """1 − (violating cells / checkable cells) for the given CFDs."""
    cfd_list = list(cfds)
    if not cfd_list or len(table) == 0:
        return 1.0
    checkable = 0
    for cfd in cfd_list:
        for row in table.rows():
            if cfd.applies_to(row):
                checkable += 1
    if checkable == 0:
        return 1.0
    violations = find_violations(table, cfd_list, witnesses=witnesses)
    return max(0.0, 1.0 - len(violations) / checkable)


def relevance(table: Table, master: Table, key: Sequence[str]) -> float:
    """Fraction of master-data entities covered by ``table``.

    Paper §2.2 describes master data as "the complete list of properties the
    user is interested in"; relevance (a recall-style measure) is how much of
    that list the wrangled result covers.
    """
    if len(master) == 0:
        return 1.0
    master_keys = set()
    for row in master.rows():
        master_key = normalise_key_tuple(row.get(k) for k in key)
        if any(part is None for part in master_key):
            continue
        master_keys.add(master_key)
    if not master_keys:
        return 1.0
    covered = set()
    for row in table.rows():
        table_key = normalise_key_tuple(row.get(k) for k in key)
        if table_key in master_keys:
            covered.add(table_key)
    return len(covered) / len(master_keys)


@dataclass
class QualityReport:
    """Per-criterion scores for one table (plus per-attribute completeness)."""

    relation: str
    completeness: float
    accuracy: float
    consistency: float
    relevance: float
    attribute_completeness: dict[str, float] = field(default_factory=dict)
    row_count: int = 0

    def overall(self, weights: Mapping[str, float] | None = None) -> float:
        """Weighted overall score (uniform weights when none are given)."""
        scores = {
            "completeness": self.completeness,
            "accuracy": self.accuracy,
            "consistency": self.consistency,
            "relevance": self.relevance,
        }
        if not weights:
            return sum(scores.values()) / len(scores)
        total = sum(weights.get(name, 0.0) for name in scores)
        if total <= 0:
            return sum(scores.values()) / len(scores)
        return sum(scores[name] * weights.get(name, 0.0) for name in scores) / total

    def as_dict(self) -> dict[str, float]:
        """The four criterion scores as a dictionary."""
        return {
            "completeness": self.completeness,
            "accuracy": self.accuracy,
            "consistency": self.consistency,
            "relevance": self.relevance,
        }


def evaluate_quality(
    table: Table,
    *,
    reference: Table | None = None,
    reference_key: Sequence[str] = (),
    cfds: Iterable[CFD] = (),
    witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
    master: Table | None = None,
    master_key: Sequence[str] = (),
    completeness_weights: Mapping[str, float] | None = None,
) -> QualityReport:
    """Compute a full :class:`QualityReport` for ``table``.

    Criteria whose supporting information is unavailable degrade gracefully:
    without reference data accuracy is 0-informative and reported as 0.0
    only when a reference was supplied but nothing matched; with no
    reference at all it is reported as the neutral value 0.5, mirroring the
    paper's point that some metrics *cannot be determined* without data
    context. The same convention applies to relevance without master data.
    Consistency without CFDs is 1.0 (there is nothing to violate).
    """
    completeness_by_attribute = {
        name: attribute_completeness(table, name)
        for name in table.schema.attribute_names
        if not name.startswith("_")
    }
    completeness_score = table_completeness(table, weights=completeness_weights)
    if reference is not None and reference_key:
        accuracy_score = accuracy_against_reference(table, reference, reference_key)
    else:
        accuracy_score = 0.5
    consistency_score = consistency(table, cfds, witnesses=witnesses)
    if master is not None and master_key:
        relevance_score = relevance(table, master, master_key)
    else:
        relevance_score = 0.5
    return QualityReport(
        relation=table.name,
        completeness=completeness_score,
        accuracy=accuracy_score,
        consistency=consistency_score,
        relevance=relevance_score,
        attribute_completeness=completeness_by_attribute,
        row_count=len(table),
    )


def _cell_equal(left: Any, right: Any) -> bool:
    if is_null(left) or is_null(right):
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.strip().lower() == right.strip().lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(float(left) - float(right)) < 1e-9
    return left == right
