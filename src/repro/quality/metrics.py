"""Quality metrics: completeness, accuracy, consistency, relevance.

Paper §2.3: "the completeness of the crimerank attribute can be estimated as
the fraction of non-null values", while "determining the consistency of the
property table needs additional information" — CFDs learned from reference
data. Accuracy is measured against reference/master/ground-truth data, and
relevance as coverage of the entities the user cares about (master data).

All metrics return values in [0, 1]; higher is better.

Every function here is a thin wrapper over the sufficient-statistic layer
(:mod:`repro.quality.stats`): build the criterion's accumulator over the
table, then finalise. That makes the scores *maintainable* — the
incremental engine patches the accumulators row-by-row instead of
rescanning — while the scan API (and every number it produces) stays
exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.quality.cfd import CFD
from repro.quality.stats import (
    AccuracyStats,
    CompletenessStats,
    ConsistencyStats,
    RelevanceStats,
    build_stats,
)
from repro.relational.table import Table

__all__ = [
    "attribute_completeness",
    "table_completeness",
    "accuracy_against_reference",
    "attribute_accuracy",
    "consistency",
    "relevance",
    "QualityReport",
    "evaluate_quality",
]


def attribute_completeness(table: Table, attribute: str) -> float:
    """Fraction of non-null values in one attribute."""
    if len(table) == 0:
        return 0.0
    table.schema.position(attribute)  # unknown attributes raise, as before
    stats = CompletenessStats(
        row_names=tuple(table.schema.attribute_names), attributes=(attribute,)
    )
    for values in table.tuples():
        stats.add_row(values)
    return stats.attribute_completeness(attribute)


def table_completeness(
    table: Table,
    attributes: Sequence[str] | None = None,
    weights: Mapping[str, float] | None = None,
) -> float:
    """(Weighted) mean completeness over ``attributes``.

    By default all attributes are considered except bookkeeping columns
    (names starting with ``_``, e.g. the provenance/row-id columns added by
    mapping execution).
    """
    if attributes is not None:
        names = list(attributes)
        if len(table) > 0:
            for name in names:
                # Unknown attributes raise exactly when the old per-attribute
                # scans would have (an empty table short-circuited first).
                table.schema.position(name)
    else:
        names = [n for n in table.schema.attribute_names if not n.startswith("_")]
    stats = CompletenessStats(
        row_names=tuple(table.schema.attribute_names), attributes=tuple(names)
    )
    for values in table.tuples():
        stats.add_row(values)
    return stats.score(weights=weights)


def accuracy_against_reference(
    table: Table, reference: Table, key: Sequence[str], attributes: Sequence[str] | None = None
) -> float:
    """Fraction of checked cells agreeing with ``reference``.

    Rows are joined to the reference on ``key``; for each joined row, each of
    ``attributes`` (default: all shared non-key attributes) is compared.
    Cells whose key has no reference counterpart are not counted (accuracy
    measures correctness of what can be checked, completeness handles
    missingness).
    """
    stats = AccuracyStats.from_reference(
        table.schema.attribute_names, reference, key, attributes
    )
    if not stats.names:
        return 0.0
    for values in table.tuples():
        stats.add_row(values)
    return stats.value()


def attribute_accuracy(table: Table, reference: Table, key: Sequence[str], attribute: str) -> float:
    """Accuracy of a single attribute against reference data."""
    return accuracy_against_reference(table, reference, key, [attribute])


def consistency(
    table: Table, cfds: Iterable[CFD], *, witnesses: Mapping[str, Mapping[tuple, Any]] | None = None
) -> float:
    """1 − (violating cells / checkable cells) for the given CFDs.

    A single pass over the rows counts checkable cells and violations
    together (via :class:`~repro.quality.stats.ConsistencyStats`) — the
    old implementation scanned once for ``applies_to`` and again inside
    ``find_violations``.
    """
    stats = ConsistencyStats(
        row_names=tuple(table.schema.attribute_names),
        cfds=tuple(cfds),
        witnesses=dict(witnesses or {}),
    )
    if not stats.cfds:
        return 1.0
    for values in table.tuples():
        stats.add_row(values)
    return stats.value()


def relevance(table: Table, master: Table, key: Sequence[str]) -> float:
    """Fraction of master-data entities covered by ``table``.

    Paper §2.2 describes master data as "the complete list of properties the
    user is interested in"; relevance (a recall-style measure) is how much of
    that list the wrangled result covers.
    """
    stats = RelevanceStats.from_master(table.schema.attribute_names, master, key)
    for values in table.tuples():
        stats.add_row(values)
    return stats.value()


@dataclass
class QualityReport:
    """Per-criterion scores for one table (plus per-attribute completeness)."""

    relation: str
    completeness: float
    accuracy: float
    consistency: float
    relevance: float
    attribute_completeness: dict[str, float] = field(default_factory=dict)
    row_count: int = 0
    #: Certain-vs-repaired answer agreement over a query workload; ``None``
    #: until ``Wrangler.query(mode="both")`` has observed any queries.
    answer_agreement: float | None = None

    def overall(self, weights: Mapping[str, float] | None = None) -> float:
        """Weighted overall score (uniform weights when none are given)."""
        scores = {
            "completeness": self.completeness,
            "accuracy": self.accuracy,
            "consistency": self.consistency,
            "relevance": self.relevance,
        }
        if not weights:
            return sum(scores.values()) / len(scores)
        total = sum(weights.get(name, 0.0) for name in scores)
        if total <= 0:
            return sum(scores.values()) / len(scores)
        return sum(scores[name] * weights.get(name, 0.0) for name in scores) / total

    def as_dict(self) -> dict[str, float]:
        """The criterion scores as a dictionary.

        ``answer_agreement`` appears only once observed, so consumers of
        the four classic criteria are unaffected."""
        scores = {
            "completeness": self.completeness,
            "accuracy": self.accuracy,
            "consistency": self.consistency,
            "relevance": self.relevance,
        }
        if self.answer_agreement is not None:
            scores["answer_agreement"] = self.answer_agreement
        return scores


def evaluate_quality(
    table: Table,
    *,
    reference: Table | None = None,
    reference_key: Sequence[str] = (),
    cfds: Iterable[CFD] = (),
    witnesses: Mapping[str, Mapping[tuple, Any]] | None = None,
    master: Table | None = None,
    master_key: Sequence[str] = (),
    completeness_weights: Mapping[str, float] | None = None,
) -> QualityReport:
    """Compute a full :class:`QualityReport` for ``table``.

    Criteria whose supporting information is unavailable degrade gracefully:
    without reference data accuracy is 0-informative and reported as 0.0
    only when a reference was supplied but nothing matched; with no
    reference at all it is reported as the neutral value 0.5, mirroring the
    paper's point that some metrics *cannot be determined* without data
    context. The same convention applies to relevance without master data.
    Consistency without CFDs is 1.0 (there is nothing to violate).

    Implemented as ``build_stats(...).finalise()``; callers that need to
    keep the report maintainable hold on to the intermediate
    :class:`~repro.quality.stats.QualityStats` instead.
    """
    return build_stats(
        table,
        reference=reference,
        reference_key=reference_key,
        cfds=cfds,
        witnesses=witnesses,
        master=master,
        master_key=master_key,
        completeness_weights=completeness_weights,
    ).finalise()
