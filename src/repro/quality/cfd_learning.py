"""Learning CFDs from data-context reference data.

Table 1: "CFD Learning — Data Examples". The paper's scenario learns CFDs
from an open-government address list so that "the consistency of the address
information within the property table can be established" and repairs can be
carried out on mapping results.

The learner searches for approximate FDs in the reference table, keeps those
above a confidence threshold as *variable* CFDs (with witness indexes built
from the reference data), and additionally emits high-support *constant*
pattern CFDs for frequent LHS values.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Mapping

from repro.quality.cfd import WILDCARD, CFD
from repro.quality.profiling import discover_functional_dependencies
from repro.relational.keys import normalise_key_tuple
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["CFDLearnerConfig", "LearnedCFDs", "CFDLearner", "build_witness"]


@dataclass(frozen=True)
class CFDLearnerConfig:
    """Tuning knobs of the CFD learner."""

    #: Minimum confidence for an approximate FD to be kept.
    min_confidence: float = 0.95
    #: Maximum number of LHS attributes explored.
    max_lhs_size: int = 2
    #: Minimum number of reference tuples sharing an LHS value for a
    #: constant pattern to be emitted.
    min_constant_support: int = 25
    #: Maximum number of constant-pattern CFDs emitted per dependency.
    max_constant_patterns: int = 20


@dataclass
class LearnedCFDs:
    """The learner's output: dependencies plus their witness indexes."""

    cfds: list[CFD]
    #: cfd_id → (LHS values → expected RHS value), for variable CFDs.
    witnesses: dict[str, dict[tuple, Any]]

    def __len__(self) -> int:
        return len(self.cfds)

    def variable_cfds(self) -> list[CFD]:
        """Only the variable (wildcard-RHS) dependencies."""
        return [cfd for cfd in self.cfds if cfd.is_variable]

    def constant_cfds(self) -> list[CFD]:
        """Only the constant-pattern dependencies."""
        return [cfd for cfd in self.cfds if cfd.is_constant]


class CFDLearner:
    """Learns CFDs from one reference table."""

    def __init__(self, config: CFDLearnerConfig | None = None):
        self._config = config or CFDLearnerConfig()

    @property
    def config(self) -> CFDLearnerConfig:
        """The learner configuration."""
        return self._config

    def learn(
        self,
        reference: Table,
        *,
        target_relation: str | None = None,
        attribute_map: Mapping[str, str] | None = None,
    ) -> LearnedCFDs:
        """Learn CFDs from ``reference``.

        ``target_relation`` / ``attribute_map`` translate the dependencies to
        the target schema's relation and attribute names (the reference table
        may use its own naming, e.g. ``Address.city`` has no counterpart in
        the target).  Attributes without a translation are kept only if the
        map is empty; otherwise dependencies touching unmapped attributes are
        dropped.
        """
        relation = target_relation or reference.name
        rename = dict(attribute_map or {})
        config = self._config
        discovered = discover_functional_dependencies(
            reference, min_confidence=config.min_confidence, max_lhs_size=config.max_lhs_size
        )

        cfds: list[CFD] = []
        witnesses: dict[str, dict[tuple, Any]] = {}
        counter = 0
        for lhs, rhs, confidence in discovered:
            if rename:
                if rhs not in rename or any(a not in rename for a in lhs):
                    continue
                mapped_lhs = tuple(rename[a] for a in lhs)
                mapped_rhs = rename[rhs]
            else:
                mapped_lhs, mapped_rhs = tuple(lhs), rhs
            counter += 1
            # Ids are namespaced by the data-context table the dependency was
            # learned from: two context tables bound to one target would
            # otherwise re-number from 1 and their witness indexes would
            # overwrite each other in ``LearnedCFDs.witnesses``.
            cfd_id = f"cfd_{reference.name}_{relation}_{counter}"
            support = self._fd_support(reference, lhs)
            variable = CFD(
                cfd_id=cfd_id,
                relation=relation,
                lhs=mapped_lhs,
                rhs=mapped_rhs,
                rhs_pattern=WILDCARD,
                support=support,
                confidence=confidence,
            )
            cfds.append(variable)
            witnesses[cfd_id] = build_witness(reference, lhs, rhs)
            cfds.extend(
                self._constant_patterns(
                    reference, lhs, rhs, relation, mapped_lhs, mapped_rhs, cfd_id
                )
            )
        return LearnedCFDs(cfds=cfds, witnesses=witnesses)

    def _constant_patterns(
        self,
        reference: Table,
        lhs: tuple[str, ...],
        rhs: str,
        relation: str,
        mapped_lhs: tuple[str, ...],
        mapped_rhs: str,
        parent_id: str,
    ) -> list[CFD]:
        """Emit constant-pattern CFDs for frequent LHS value combinations."""
        config = self._config
        groups: dict[tuple, dict[Any, int]] = defaultdict(lambda: defaultdict(int))
        lhs_positions = [reference.schema.position(a) for a in lhs]
        rhs_position = reference.schema.position(rhs)
        for values in reference.tuples():
            key = tuple(values[p] for p in lhs_positions)
            value = values[rhs_position]
            if any(is_null(part) for part in key) or is_null(value):
                continue
            groups[key][value] += 1
        total_rows = max(1, len(reference))
        frequent = sorted(
            (
                (key, counts)
                for key, counts in groups.items()
                if sum(counts.values()) >= config.min_constant_support
            ),
            key=lambda item: -sum(item[1].values()),
        )
        limit = config.max_constant_patterns
        patterns: list[CFD] = []
        for index, (key, counts) in enumerate(frequent[:limit], start=1):
            expected, expected_count = max(counts.items(), key=lambda item: item[1])
            group_size = sum(counts.values())
            patterns.append(
                CFD(
                    cfd_id=f"{parent_id}_const{index}",
                    relation=relation,
                    lhs=mapped_lhs,
                    rhs=mapped_rhs,
                    lhs_pattern=tuple(zip(mapped_lhs, key)),
                    rhs_pattern=expected,
                    support=group_size / total_rows,
                    confidence=expected_count / group_size,
                )
            )
        return patterns

    @staticmethod
    def _fd_support(reference: Table, lhs: tuple[str, ...]) -> float:
        """Fraction of reference rows with a fully non-null LHS."""
        positions = [reference.schema.position(a) for a in lhs]
        if not len(reference):
            return 0.0
        supported = sum(
            1 for values in reference.tuples() if not any(is_null(values[p]) for p in positions)
        )
        return supported / len(reference)


def build_witness(
    reference: Table, lhs: tuple[str, ...] | list[str], rhs: str
) -> dict[tuple, Any]:
    """Build a witness index (LHS values → majority RHS value) from reference data.

    LHS keys are normalised (:func:`repro.relational.keys.normalise_key_tuple`)
    so that format drift in the checked data ("m1 1aa") still finds the
    reference entry ("M1 1AA").
    """
    groups: dict[tuple, dict[Any, int]] = defaultdict(lambda: defaultdict(int))
    lhs_positions = [reference.schema.position(a) for a in lhs]
    rhs_position = reference.schema.position(rhs)
    for values in reference.tuples():
        key = normalise_key_tuple(values[p] for p in lhs_positions)
        value = values[rhs_position]
        if any(part is None for part in key) or is_null(value):
            continue
        groups[key][value] += 1
    return {
        key: max(counts.items(), key=lambda item: item[1])[0] for key, counts in groups.items()
    }
