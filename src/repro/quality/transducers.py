"""Quality transducers: CFD learning, quality metrics and repair.

Table 1 names "CFD Learning — Data Examples"; §2.3 describes the Quality
Metric transducer becoming able to run once the data context provides
reference data, "adding quality metrics on sources and mappings to the
knowledge base", which in turn enables source/mapping selection.
"""

from __future__ import annotations

from repro.core.facts import Predicates, cfd_fact, metric_fact, repair_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.incremental.state import incremental_state
from repro.provenance.model import provenance_store
from repro.quality.cfd_learning import CFDLearner, CFDLearnerConfig, LearnedCFDs
from repro.quality.metrics import evaluate_quality
from repro.quality.repair import CFDRepairer

__all__ = [
    "CFD_ARTIFACT_KEY",
    "CFDLearningTransducer",
    "QualityMetricTransducer",
    "DataRepairTransducer",
]

#: Artifact key under which learned CFDs (with witnesses) are stored in the KB.
CFD_ARTIFACT_KEY = "learned_cfds"


class CFDLearningTransducer(Transducer):
    """Learns CFDs from data-context tables bound to the target schema."""

    name = "cfd_learning"
    activity = Activity.QUALITY
    priority = 10
    input_dependencies = ("data_context(C, K, T)",)

    def __init__(self, config: CFDLearnerConfig | None = None):
        super().__init__()
        self._learner = CFDLearner(config)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        all_cfds: list = []
        witnesses: dict = {}
        learned_from = []
        for context_name, _kind, target_relation in kb.facts(Predicates.DATA_CONTEXT):
            if not kb.has_table(context_name):
                continue
            reference = kb.get_table(context_name)
            target_schema = kb.schema_of(target_relation)
            # Only translate attributes that exist in the target schema.
            attribute_map = {
                name: name for name in reference.schema.attribute_names if name in target_schema
            }
            if len(attribute_map) < 2:
                continue
            learned = self._learner.learn(
                reference, target_relation=target_relation, attribute_map=attribute_map
            )
            all_cfds.extend(learned.cfds)
            witnesses.update(learned.witnesses)
            learned_from.append(context_name)
        kb.store_artifact(CFD_ARTIFACT_KEY, LearnedCFDs(cfds=all_cfds, witnesses=witnesses))
        added = 0
        for cfd in all_cfds:
            added += int(kb.assert_tuple(cfd_fact(*cfd.to_fact_fields())))
        return TransducerResult(
            facts_added=added,
            notes=f"learned {len(all_cfds)} CFDs from {learned_from}",
            details={"cfds": [cfd.describe() for cfd in all_cfds]},
        )


class QualityMetricTransducer(Transducer):
    """Computes quality metrics for sources and materialised results.

    Completeness is always computable; accuracy, consistency and relevance
    additionally use whatever data context is available (reference data for
    accuracy/consistency via CFDs, master data for relevance). Metrics are
    asserted as ``metric`` facts on sources and results, which is what the
    selection transducers consume.
    """

    name = "quality_metrics"
    activity = Activity.QUALITY
    priority = 20
    input_dependencies = ("dataset(S, R, N)",)
    watch_predicates = ("cfd", "data_context", "result", "repair")

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        learned: LearnedCFDs | None = kb.get_artifact(CFD_ARTIFACT_KEY)
        cfds = learned.cfds if learned else []
        witnesses = learned.witnesses if learned else {}
        reference, reference_key = self._context_table(kb, Predicates.CONTEXT_REFERENCE)
        master, master_key = self._context_table(kb, Predicates.CONTEXT_MASTER)

        added = 0
        evaluated = []
        subjects = [(Predicates.ROLE_SOURCE, name) for name in kb.source_relations()]
        subjects += [("result", row[0]) for row in kb.facts(Predicates.RESULT)]
        for subject_kind, relation in subjects:
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            shared_reference_key = [
                k for k in reference_key if reference is not None and k in table.schema
            ]
            shared_master_key = [k for k in master_key if master is not None and k in table.schema]
            report = evaluate_quality(
                table,
                reference=reference if shared_reference_key else None,
                reference_key=shared_reference_key,
                cfds=[cfd for cfd in cfds if cfd.rhs in table.schema],
                witnesses=witnesses,
                master=master if shared_master_key else None,
                master_key=shared_master_key,
            )
            for criterion, value in report.as_dict().items():
                fact = metric_fact(subject_kind, relation, criterion, value)
                added += int(kb.assert_tuple(fact))
            evaluated.append(relation)
        return TransducerResult(
            facts_added=added,
            notes=f"computed metrics for {len(evaluated)} datasets",
            details={"evaluated": evaluated},
        )

    @staticmethod
    def _context_table(kb: KnowledgeBase, kind: str):
        """The first data-context table of ``kind`` and a join key for it.

        Reference data is keyed on an identifying attribute so the remaining
        shared attributes can be checked; master data is keyed on all shared
        attributes (coverage of whole entities).
        """
        for context_name, context_kind, target_relation in kb.facts(Predicates.DATA_CONTEXT):
            if context_kind != kind or not kb.has_table(context_name):
                continue
            table = kb.get_table(context_name)
            target_schema = kb.schema_of(target_relation)
            shared = [name for name in table.schema.attribute_names if name in target_schema]
            if not shared:
                continue
            if kind == Predicates.CONTEXT_MASTER:
                key = shared
            else:
                key = [name for name in shared if "postcode" in name.lower()] or shared[:1]
            return table, key
        return None, []


class DataRepairTransducer(Transducer):
    """Repairs materialised results using the learned CFDs."""

    name = "data_repair"
    activity = Activity.REPAIR
    priority = 10
    input_dependencies = (
        "result(R, M, N)",
        "cfd(I, Rel, L, Rh, S)",
    )

    def __init__(self, repairer: CFDRepairer | None = None):
        super().__init__()
        self._repairer = repairer or CFDRepairer()

    @property
    def repairer(self) -> CFDRepairer:
        """The configured repairer (shared with the incremental engine)."""
        return self._repairer

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        learned: LearnedCFDs | None = kb.get_artifact(CFD_ARTIFACT_KEY)
        if not learned or not learned.cfds:
            return TransducerResult(notes="no learned CFDs available")
        added = 0
        repaired_tables = []
        total_actions = 0
        store = provenance_store(kb)
        state = incremental_state(kb, create=False)
        for relation, _mapping_id, _rows in kb.facts(Predicates.RESULT):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            result = self._repairer.repair(
                table, learned.cfds, witnesses=learned.witnesses, provenance=store
            )
            if not result.actions:
                continue
            kb.update_table(result.table)
            if state is not None:
                state.observe_table_updated(result.table)
            repaired_tables.append(relation)
            total_actions += len(result.actions)
            for action in result.actions:
                fact = repair_fact(
                    action.relation,
                    str(action.row_index),
                    action.attribute,
                    action.old_value,
                    action.new_value,
                    action.cfd_id,
                )
                added += int(kb.assert_tuple(fact))
        return TransducerResult(
            facts_added=added,
            tables_written=repaired_tables,
            notes=f"repaired {total_actions} cells in {len(repaired_tables)} tables",
            details={"actions": total_actions},
        )
