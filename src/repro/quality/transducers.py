"""Quality transducers: CFD learning, quality metrics and repair.

Table 1 names "CFD Learning — Data Examples"; §2.3 describes the Quality
Metric transducer becoming able to run once the data context provides
reference data, "adding quality metrics on sources and mappings to the
knowledge base", which in turn enables source/mapping selection.

The metric transducer evaluates through the sufficient-statistic layer
(:mod:`repro.quality.stats`) and stashes the per-relation accumulators as
the ``quality_stats`` artifact: the incremental engine patches them (and
the ``metric`` facts they finalise into) row-by-row when it patches a
result, instead of rescanning every table per feedback round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.facts import Predicates, cfd_fact, metric_fact, repair_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.incremental.state import incremental_state
from repro.provenance.model import provenance_store
from repro.quality.cfd_learning import CFDLearner, CFDLearnerConfig, LearnedCFDs
from repro.quality.repair import CFDRepairer
from repro.quality.stats import (
    QualityStats,
    build_master_keys,
    build_reference_index,
    build_stats,
)

__all__ = [
    "CFD_ARTIFACT_KEY",
    "QUALITY_STATS_ARTIFACT_KEY",
    "QualityStatsEntry",
    "QualityStatsStash",
    "quality_context_token",
    "quality_stats_stash",
    "build_relation_stats",
    "build_relation_entry",
    "CFDLearningTransducer",
    "QualityMetricTransducer",
    "DataRepairTransducer",
]

#: Artifact key under which learned CFDs (with witnesses) are stored in the KB.
CFD_ARTIFACT_KEY = "learned_cfds"

#: Artifact key for the session's maintained quality statistics
#: (:class:`QualityStatsStash`).
QUALITY_STATS_ARTIFACT_KEY = "quality_stats"


@dataclass
class QualityStatsEntry:
    """One relation's maintained accumulators plus its metric-fact subject."""

    subject_kind: str
    stats: QualityStats
    #: Names of the data-context tables the accumulators were built against
    #: (None when the criterion had no context) — consumers verify they
    #: would have picked the same ones before trusting the entry.
    reference_name: str | None = None
    master_name: str | None = None


class QualityStatsStash:
    """Per-session quality statistics, keyed by relation.

    ``context_token`` records the data-context/CFD revisions the entries
    were built against — entries are only patchable while it matches (a new
    reference table or refreshed CFDs change what the accumulators mean).
    ``synced_revision`` is the knowledge-base revision at which the entries
    were last known to exactly reflect the catalog tables; consumers like
    :meth:`Wrangler.evaluate <repro.wrangler.pipeline.Wrangler.evaluate>`
    use the finalised reports only when it still matches.
    """

    def __init__(self) -> None:
        self.entries: dict[str, QualityStatsEntry] = {}
        self.context_token: tuple = ()
        self.synced_revision: int = -1

    def get(self, relation: str) -> QualityStatsEntry | None:
        """The entry of one relation (None when untracked)."""
        return self.entries.get(relation)

    def report(self, relation: str):
        """The finalised :class:`~repro.quality.metrics.QualityReport` (or None)."""
        entry = self.entries.get(relation)
        return entry.stats.finalise() if entry is not None else None

    def fresh(self, kb: KnowledgeBase, relation: str) -> bool:
        """Whether ``relation``'s entry exactly reflects the current KB."""
        return (
            relation in self.entries
            and self.synced_revision == kb.revision
            and self.context_token == quality_context_token(kb)
        )


def quality_context_token(kb: KnowledgeBase) -> tuple:
    """Revisions of the inputs the metric evaluation context derives from.

    The accumulators embed the reference index, the CFD/witness set and the
    master-key set; those change exactly when ``cfd`` or ``data_context``
    facts do (context tables are registered once and treated as immutable,
    like everywhere else in the pipeline).
    """
    return (
        kb.predicate_revision(Predicates.CFD),
        kb.predicate_revision(Predicates.DATA_CONTEXT),
    )


def quality_stats_stash(kb: KnowledgeBase, *, create: bool = True) -> QualityStatsStash | None:
    """The session's stash (created on first use, like the provenance store)."""
    stash = kb.get_artifact(QUALITY_STATS_ARTIFACT_KEY)
    if stash is None and create:
        stash = QualityStatsStash()
        kb.store_artifact(QUALITY_STATS_ARTIFACT_KEY, stash)
    return stash


@dataclass
class MetricContext:
    """One metric run's evaluation inputs, with shared index caches.

    The keyed reference index and the master-key set depend only on the
    context tables and the join keys — never on the relation evaluated —
    so one context builds each at most once per key, however many sources
    and results share it.
    """

    learned: LearnedCFDs | None
    reference: object
    reference_key: list
    master: object
    master_key: list
    _reference_indexes: dict = field(default_factory=dict)
    _master_key_sets: dict = field(default_factory=dict)

    def reference_index(self, key: tuple):
        cached = self._reference_indexes.get(key)
        if cached is None:
            cached = build_reference_index(self.reference, key)
            self._reference_indexes[key] = cached
        return cached

    def master_keys(self, key: tuple):
        cached = self._master_key_sets.get(key)
        if cached is None:
            cached = build_master_keys(self.master, key)
            self._master_key_sets[key] = cached
        return cached


def _metric_context(kb: KnowledgeBase) -> MetricContext:
    """The evaluation inputs (CFDs, reference, master) the metric run uses."""
    learned: LearnedCFDs | None = kb.get_artifact(CFD_ARTIFACT_KEY)
    reference, reference_key = _context_table(kb, Predicates.CONTEXT_REFERENCE)
    master, master_key = _context_table(kb, Predicates.CONTEXT_MASTER)
    return MetricContext(
        learned=learned,
        reference=reference,
        reference_key=reference_key,
        master=master,
        master_key=master_key,
    )


def build_relation_stats(
    kb: KnowledgeBase, relation: str, *, context: MetricContext | None = None
) -> QualityStats:
    """Fresh accumulators for one relation against the current data context.

    Exactly the evaluation the metric transducer performs for that relation
    — the engine uses this to rebuild a stash entry it cannot patch.
    """
    if context is None:
        context = _metric_context(kb)
    learned = context.learned
    cfds = learned.cfds if learned else []
    witnesses = learned.witnesses if learned else {}
    table = kb.get_table(relation)
    shared_reference_key = [
        k for k in context.reference_key if context.reference is not None and k in table.schema
    ]
    shared_master_key = [
        k for k in context.master_key if context.master is not None and k in table.schema
    ]
    return build_stats(
        table,
        reference=context.reference if shared_reference_key else None,
        reference_key=shared_reference_key,
        cfds=[cfd for cfd in cfds if cfd.rhs in table.schema],
        witnesses=witnesses,
        master=context.master if shared_master_key else None,
        master_key=shared_master_key,
        reference_index=(
            context.reference_index(tuple(shared_reference_key))
            if shared_reference_key
            else None
        ),
        master_keys=(
            context.master_keys(tuple(shared_master_key)) if shared_master_key else None
        ),
    )


def build_relation_entry(
    kb: KnowledgeBase, relation: str, subject_kind: str, *, context: MetricContext | None = None
) -> QualityStatsEntry:
    """A full stash entry for one relation (stats plus context identity)."""
    if context is None:
        context = _metric_context(kb)
    stats = build_relation_stats(kb, relation, context=context)
    return QualityStatsEntry(
        subject_kind=subject_kind,
        stats=stats,
        reference_name=context.reference.name if stats.accuracy is not None else None,
        master_name=context.master.name if stats.relevance is not None else None,
    )


class CFDLearningTransducer(Transducer):
    """Learns CFDs from data-context tables bound to the target schema."""

    name = "cfd_learning"
    activity = Activity.QUALITY
    priority = 10
    input_dependencies = ("data_context(C, K, T)",)

    def __init__(self, config: CFDLearnerConfig | None = None):
        super().__init__()
        self._learner = CFDLearner(config)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        all_cfds: list = []
        witnesses: dict = {}
        learned_from = []
        for context_name, _kind, target_relation in kb.facts(Predicates.DATA_CONTEXT):
            if not kb.has_table(context_name):
                continue
            reference = kb.get_table(context_name)
            target_schema = kb.schema_of(target_relation)
            # Only translate attributes that exist in the target schema.
            attribute_map = {
                name: name for name in reference.schema.attribute_names if name in target_schema
            }
            if len(attribute_map) < 2:
                continue
            learned = self._learner.learn(
                reference, target_relation=target_relation, attribute_map=attribute_map
            )
            all_cfds.extend(learned.cfds)
            witnesses.update(learned.witnesses)
            learned_from.append(context_name)
        kb.store_artifact(CFD_ARTIFACT_KEY, LearnedCFDs(cfds=all_cfds, witnesses=witnesses))
        added = 0
        for cfd in all_cfds:
            added += int(kb.assert_tuple(cfd_fact(*cfd.to_fact_fields())))
        return TransducerResult(
            facts_added=added,
            notes=f"learned {len(all_cfds)} CFDs from {learned_from}",
            details={"cfds": [cfd.describe() for cfd in all_cfds]},
        )


class QualityMetricTransducer(Transducer):
    """Computes quality metrics for sources and materialised results.

    Completeness is always computable; accuracy, consistency and relevance
    additionally use whatever data context is available (reference data for
    accuracy/consistency via CFDs, master data for relevance). Metrics are
    asserted as ``metric`` facts on sources and results, which is what the
    selection transducers consume. The sufficient statistics behind every
    report are stashed (``quality_stats`` artifact) so later revisions can
    patch the metrics instead of rescanning.
    """

    name = "quality_metrics"
    activity = Activity.QUALITY
    priority = 20
    input_dependencies = ("dataset(S, R, N)",)
    watch_predicates = ("cfd", "data_context", "result", "repair")

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        context = _metric_context(kb)
        added = 0
        evaluated = []
        stash = quality_stats_stash(kb)
        stash.entries = {}
        stash.context_token = quality_context_token(kb)
        subjects = [(Predicates.ROLE_SOURCE, name) for name in kb.source_relations()]
        subjects += [("result", row[0]) for row in kb.facts(Predicates.RESULT)]
        # Metric facts are derived state: replace, never accumulate (stale
        # values sort after fresh ones in the KB's deterministic fact order
        # and would win last-per-criterion reads in the selection consumers).
        kb.retract_where(Predicates.METRIC)
        for subject_kind, relation in subjects:
            if not kb.has_table(relation):
                continue
            entry = build_relation_entry(kb, relation, subject_kind, context=context)
            stash.entries[relation] = entry
            for criterion, value in entry.stats.finalise().as_dict().items():
                fact = metric_fact(subject_kind, relation, criterion, value)
                added += int(kb.assert_tuple(fact))
            evaluated.append(relation)
        state = incremental_state(kb, create=False)
        if state is not None:
            state.observe_quality_stats(stash)
        # Stamped after the assertions: the entries reflect the KB exactly
        # as it stands when this transducer hands back control.
        stash.synced_revision = kb.revision
        return TransducerResult(
            facts_added=added,
            notes=f"computed metrics for {len(evaluated)} datasets",
            details={"evaluated": evaluated},
        )

    @staticmethod
    def _context_table(kb: KnowledgeBase, kind: str):
        """The first data-context table of ``kind`` and a join key for it."""
        return _context_table(kb, kind)


def _context_table(kb: KnowledgeBase, kind: str):
    """The first data-context table of ``kind`` and a join key for it.

    Reference data is keyed on an identifying attribute so the remaining
    shared attributes can be checked; master data is keyed on all shared
    attributes (coverage of whole entities).
    """
    for context_name, context_kind, target_relation in kb.facts(Predicates.DATA_CONTEXT):
        if context_kind != kind or not kb.has_table(context_name):
            continue
        table = kb.get_table(context_name)
        target_schema = kb.schema_of(target_relation)
        shared = [name for name in table.schema.attribute_names if name in target_schema]
        if not shared:
            continue
        if kind == Predicates.CONTEXT_MASTER:
            key = shared
        else:
            key = [name for name in shared if "postcode" in name.lower()] or shared[:1]
        return table, key
    return None, []


class DataRepairTransducer(Transducer):
    """Repairs materialised results using the learned CFDs."""

    name = "data_repair"
    activity = Activity.REPAIR
    priority = 10
    input_dependencies = (
        "result(R, M, N)",
        "cfd(I, Rel, L, Rh, S)",
    )

    def __init__(self, repairer: CFDRepairer | None = None):
        super().__init__()
        self._repairer = repairer or CFDRepairer()

    @property
    def repairer(self) -> CFDRepairer:
        """The configured repairer (shared with the incremental engine)."""
        return self._repairer

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        learned: LearnedCFDs | None = kb.get_artifact(CFD_ARTIFACT_KEY)
        if not learned or not learned.cfds:
            return TransducerResult(notes="no learned CFDs available")
        added = 0
        repaired_tables = []
        total_actions = 0
        store = provenance_store(kb)
        state = incremental_state(kb, create=False)
        stash = quality_stats_stash(kb, create=False)
        for relation, _mapping_id, _rows in kb.facts(Predicates.RESULT):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            result = self._repairer.repair(
                table, learned.cfds, witnesses=learned.witnesses, provenance=store
            )
            if not result.actions:
                continue
            kb.update_table(result.table)
            if state is not None:
                state.observe_table_updated(result.table)
            self._patch_stash(stash, relation, table, result.table)
            repaired_tables.append(relation)
            total_actions += len(result.actions)
            for action in result.actions:
                fact = repair_fact(
                    action.relation,
                    str(action.row_index),
                    action.attribute,
                    action.old_value,
                    action.new_value,
                    action.cfd_id,
                )
                added += int(kb.assert_tuple(fact))
        return TransducerResult(
            facts_added=added,
            tables_written=repaired_tables,
            notes=f"repaired {total_actions} cells in {len(repaired_tables)} tables",
            details={"actions": total_actions},
        )

    @staticmethod
    def _patch_stash(
        stash: QualityStatsStash | None, relation: str, before, after
    ) -> None:
        """Keep the quality statistics tracking a repair rewrite.

        A re-repair of an already-repaired table asserts no new ``repair``
        facts, so the metric transducer's watches never fire for it — the
        accumulators would silently stay on the pre-repair rows. Entries
        that already drifted are dropped instead (rebuilt on next use).
        """
        if stash is None:
            return
        entry = stash.entries.get(relation)
        if entry is None:
            return
        if entry.stats.row_count != len(before):
            stash.entries.pop(relation, None)
            return
        for old, new in zip(before.tuples(), after.tuples()):
            if old != new:
                entry.stats.replace_row(old, new)
