"""Data quality: profiling, CFDs, metrics and repair."""

from repro.quality.cfd import CFD, WILDCARD, Violation, find_violations
from repro.quality.cfd_learning import CFDLearner, CFDLearnerConfig, LearnedCFDs, build_witness
from repro.quality.metrics import (
    QualityReport,
    accuracy_against_reference,
    attribute_accuracy,
    attribute_completeness,
    consistency,
    evaluate_quality,
    relevance,
    table_completeness,
)
from repro.quality.profiling import (
    ColumnProfile,
    candidate_keys,
    discover_functional_dependencies,
    functional_dependency_confidence,
    inclusion_dependency_coverage,
    profile_column,
    profile_table,
    value_overlap,
)
from repro.quality.repair import CFDRepairer, RepairAction, RepairResult
from repro.quality.stats import (
    AccuracyStats,
    AnswerAgreementStats,
    CompletenessStats,
    ConsistencyStats,
    QualityStats,
    RelevanceStats,
    build_stats,
)
from repro.quality.transducers import (
    CFD_ARTIFACT_KEY,
    CFDLearningTransducer,
    DataRepairTransducer,
    QualityMetricTransducer,
)

__all__ = [
    "CFD",
    "WILDCARD",
    "Violation",
    "find_violations",
    "CFDLearner",
    "CFDLearnerConfig",
    "LearnedCFDs",
    "build_witness",
    "CFDRepairer",
    "RepairAction",
    "RepairResult",
    "QualityReport",
    "evaluate_quality",
    "QualityStats",
    "CompletenessStats",
    "AccuracyStats",
    "ConsistencyStats",
    "RelevanceStats",
    "AnswerAgreementStats",
    "build_stats",
    "attribute_completeness",
    "table_completeness",
    "accuracy_against_reference",
    "attribute_accuracy",
    "consistency",
    "relevance",
    "ColumnProfile",
    "profile_column",
    "profile_table",
    "candidate_keys",
    "functional_dependency_confidence",
    "discover_functional_dependencies",
    "inclusion_dependency_coverage",
    "value_overlap",
    "CFDLearningTransducer",
    "QualityMetricTransducer",
    "DataRepairTransducer",
    "CFD_ARTIFACT_KEY",
]
