"""Extending the architecture: a custom transducer and a custom control policy.

The paper emphasises that "the architecture is not tied to a specific or
fixed set of transducers" — developers contribute new components as
transducers and influence orchestration with control (network) transducers.
This example adds:

- a ``PriceBandingTransducer`` that derives a ``price_band`` summary fact
  for the materialised result (a tiny analytical component that depends on
  the result being available);
- a custom network transducer that always prefers quality-related
  components over everything else once they are runnable.

Run with::

    python examples/custom_transducer.py
"""

from __future__ import annotations

from repro import (
    Activity,
    ScenarioConfig,
    Transducer,
    TransducerResult,
    Wrangler,
    generate_scenario,
)
from repro.core.orchestrator import GenericNetworkTransducer
from repro.relational.types import is_null


class PriceBandingTransducer(Transducer):
    """Summarises the result into price bands (a downstream analytical step).

    Its input dependency is a Datalog query over the knowledge base, exactly
    like the built-in components: it becomes runnable only once a result has
    been materialised, and re-runs whenever the result changes.
    """

    name = "price_banding"
    activity = Activity.EVALUATION
    priority = 50
    input_dependencies = ("result(R, M, N)",)

    BANDS = ((0, 150_000, "entry"), (150_000, 300_000, "mid"),
             (300_000, 10_000_000, "premium"))

    def run(self, kb) -> TransducerResult:
        added = 0
        for relation, _mapping, _rows in kb.facts("result"):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            if "price" not in table.schema:
                continue
            counts = {label: 0 for _low, _high, label in self.BANDS}
            for value in table.column("price"):
                if is_null(value):
                    continue
                for low, high, label in self.BANDS:
                    if low <= float(value) < high:
                        counts[label] += 1
                        break
            kb.retract_where("price_band")
            for label, count in counts.items():
                added += int(kb.assert_fact("price_band", relation, label, count))
        return TransducerResult(facts_added=added, notes=f"derived {added} price-band facts")


class QualityFirstPolicy(GenericNetworkTransducer):
    """A specific network transducer: quality components always go first."""

    name = "quality_first"

    def choose(self, runnable, kb, trace):
        quality_components = [t for t in runnable if t.activity == Activity.QUALITY]
        if quality_components:
            return min(quality_components, key=lambda t: (t.priority, t.name))
        return super().choose(runnable, kb, trace)


def main() -> None:
    scenario = generate_scenario(ScenarioConfig(properties=250, postcodes=50, seed=3))

    wrangler = Wrangler(policy=QualityFirstPolicy())
    # Register the custom component exactly like the built-in ones.
    wrangler.registry.register(PriceBandingTransducer())

    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    wrangler.add_reference_data(scenario.address_reference)
    outcome = wrangler.run("wrangle")

    print(f"Result: {outcome.row_count} rows via {outcome.selected_mapping.mapping_id}")
    print()
    print("Price-band facts derived by the custom transducer:")
    for relation, band, count in sorted(wrangler.kb.facts("price_band")):
        print(f"  {relation}: {band:8s} {count}")
    print()
    print("Executions under the quality-first policy:")
    for name, count in sorted(wrangler.trace.execution_counts().items()):
        print(f"  {name:28s} {count}")


if __name__ == "__main__":
    main()
