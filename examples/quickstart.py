"""Quickstart: wrangle two small product feeds into one target schema.

This is the smallest end-to-end use of the library: register a couple of
source tables and a target schema, let the architecture bootstrap
automatically, then inspect the result and the orchestration trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Attribute, DataType, Schema, Table, Wrangler


def build_sources() -> list[Table]:
    """Two overlapping product feeds with different attribute conventions."""
    shop_a = Table(
        Schema("shop_a", [
            Attribute("title", DataType.STRING),
            Attribute("price", DataType.FLOAT),
            Attribute("category", DataType.STRING),
        ]),
        [
            ("USB-C cable 1m", 7.99, "cables"),
            ("Wireless mouse", 19.50, "peripherals"),
            ("Mechanical keyboard", 89.00, "peripherals"),
        ],
    )
    shop_b = Table(
        Schema("shop_b", [
            Attribute("product_title", DataType.STRING),
            Attribute("asking_price", DataType.FLOAT),
            Attribute("product_category", DataType.STRING),
        ]),
        [
            ("USB-C cable 1m", 6.49, "cables"),
            ("27 inch monitor", 189.99, "displays"),
        ],
    )
    return [shop_a, shop_b]


def main() -> None:
    target = Schema("product", [
        Attribute("title", DataType.STRING),
        Attribute("price", DataType.FLOAT),
        Attribute("category", DataType.STRING),
    ])

    wrangler = Wrangler()
    wrangler.add_sources(build_sources())
    wrangler.set_target_schema(target)

    outcome = wrangler.run("bootstrap")

    print("Selected mapping:", outcome.selected_mapping.describe())
    print()
    print("Wrangled result:")
    print(outcome.table.pretty(limit=10))
    print()
    print("Orchestration trace:")
    print(wrangler.trace.to_text())


if __name__ == "__main__":
    main()
