"""Querying dirty data: certain answers without repairing first.

The pipeline's default mode repairs and then answers queries over the
repaired result — one specific resolution of every conflict. Consistent
query answering (``repro.cqa``) is the complementary mode: answer directly
over the *unrepaired* base tables, returning only the tuples that hold in
**every** possible repair. Agreement between the two is itself a quality
signal: when they coincide, the repair was not load-bearing for your query.

This example wrangles a small dirty product catalog, then

1. answers one query in all three modes (``certain``/``repaired``/``both``),
2. runs the scenario's generated query workload through the rewriting path,
3. forces the enumeration fallback with a self-join and a repair budget,
4. shows the ``answer_agreement`` criterion landing in the quality report,
5. issues the same query through the typed service request.

Run with::

    python examples/cqa_quickstart.py
"""

from __future__ import annotations

from repro.scenarios.synth import SynthConfig
from repro.service import QueryRequest, WranglingSession


def main() -> None:
    # schema_drift=0 keeps the key attribute in every source — with a
    # drifted source that lacks ``sku`` entirely, every row falls into one
    # key-less block and certain answers are vacuously empty.
    session = WranglingSession.from_scenario(
        SynthConfig(entities=16, seed=1, schema_drift=0.0, query_workload=5),
        name="cqa-quickstart",
    )
    session.run()
    wrangler = session.wrangler
    target = wrangler.target_relation
    keys = {target: tuple(session.scenario.evaluation_key)}

    print("=== 1. One query, three modes ===")
    text = f"q(K, N) :- {target}(sku=K, name=N)."
    outcome = wrangler.query(text, mode="both", keys=keys)
    assert outcome.certain is not None and outcome.repaired is not None
    print(f"query: {text}")
    print(f"  certain answers : {len(outcome.certain)} (hold in every repair)")
    print(f"  repaired answers: {len(outcome.repaired)} (this repair's choice)")
    print(f"  agreement {outcome.agreement:.3f}, method {outcome.method}")

    print("\n=== 2. The generated workload, first-order rewriting ===")
    for entry in session.scenario.details["query_workload"]:
        outcome = wrangler.query(entry["query"], mode="certain", keys=keys)
        print(f"  {entry['kind']:<9} {outcome.method:<11} "
              f"{len(outcome.certain):>3} certain  exact={outcome.exact}")

    print("\n=== 3. Enumeration fallback with a budget ===")
    # The workload's self-join reuses a relation, which is outside the
    # rewritable class; a tight max_repairs forces seeded sampling of the
    # 512-repair space, so the answers become a sound upper envelope
    # (exact=False) unless the intersection empties first.
    self_join = next(
        entry for entry in session.scenario.details["query_workload"]
        if entry["kind"] == "self_join"
    )
    response = session.handle(
        QueryRequest(query=self_join["query"], mode="certain", keys=keys, max_repairs=64)
    )
    print(f"  method {response.method}, {len(response.certain)} answers, "
          f"exact={response.exact}")
    print(f"  details {response.details}")

    print("\n=== 4. Agreement as a quality criterion ===")
    report = wrangler.evaluate()
    print(f"  answer_agreement = {report.answer_agreement}")

    print("\n=== 5. Same query as a typed service request ===")
    # No keys= here: the session resolves them itself (learned exact CFDs
    # first, the scenario's evaluation key as fallback). Different keys
    # mean different conflict blocks, so the counts can differ from above.
    response = session.handle(QueryRequest(query=text, mode="both"))
    print(f"  session {response.session_id}, resolved keys {response.keys}")
    print(f"  {len(response.certain or ())} certain, "
          f"agreement {response.agreement:.3f}")


if __name__ == "__main__":
    main()
