"""Wrangling straight from deep-web result pages.

The paper's property sources are produced by web data extraction (DIADEM).
This example starts from rendered result pages instead of ready-made tables:
the pages are registered as web sources, the data-extraction transducer
induces wrappers and extracts them into source relations, and the rest of
the wrangling proceeds as usual.

Run with::

    python examples/web_extraction_pipeline.py
"""

from __future__ import annotations

from repro import ScenarioConfig, Wrangler, generate_scenario
from repro.extraction import induce_wrapper
from repro.extraction.transducers import DEFAULT_ATTRIBUTE_HINTS


def main() -> None:
    scenario = generate_scenario(ScenarioConfig(properties=300, postcodes=60, seed=21))
    pages = scenario.web_pages()

    print("Rendered deep-web pages:")
    for site, site_pages in pages.items():
        listings = sum(len(page) for page in site_pages)
        print(f"  {site}: {len(site_pages)} pages, {listings} listings")
    print()
    print("First listing of the first Rightmove page:")
    print(pages["rightmove"][0].listings[0].render())
    print()

    # Show the wrapper induction that the extraction transducer performs.
    wrapper = induce_wrapper("rightmove", pages["rightmove"], DEFAULT_ATTRIBUTE_HINTS)
    print("Induced wrapper rules for rightmove:")
    for rule in wrapper.rules:
        print(f"  page label {rule.label!r} -> attribute {rule.attribute!r}")
    print()

    wrangler = Wrangler()
    wrangler.add_web_source("rightmove", pages["rightmove"])
    wrangler.add_web_source("onthemarket", pages["onthemarket"])
    wrangler.add_source(scenario.deprivation)
    wrangler.set_target_schema(scenario.target)
    wrangler.add_reference_data(scenario.address_reference)

    outcome = wrangler.run("extract_and_wrangle", ground_truth=scenario.ground_truth)

    print(f"Extracted and wrangled {outcome.row_count} rows "
          f"using {outcome.selected_mapping.mapping_id}")
    quality = outcome.quality
    print(f"Quality vs ground truth: completeness={quality.completeness:.3f} "
          f"accuracy={quality.accuracy:.3f} overall={quality.overall():.4f}")
    print()
    print(outcome.table.head(6).pretty())


if __name__ == "__main__":
    main()
