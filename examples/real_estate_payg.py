"""The paper's demonstration: pay-as-you-go wrangling of real-estate data.

Reproduces §3 of the paper step by step:

1. automatic bootstrapping over Rightmove, Onthemarket and Deprivation;
2. adding data context (the Address reference list and master data);
3. giving feedback on the result (simulated against ground truth);
4. stating the user context of Figure 2(d).

After each step the result quality (measured against ground truth) is
printed, showing the pay-as-you-go improvement, followed by the browsable
orchestration trace.

Run with::

    python examples/real_estate_payg.py
"""

from __future__ import annotations

from repro import (
    ACCURACY,
    COMPLETENESS,
    CONSISTENCY,
    ScenarioConfig,
    UserContext,
    Wrangler,
    generate_scenario,
)


def paper_user_context() -> UserContext:
    """The pairwise statements of Figure 2(d)."""
    context = UserContext()
    context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"),
                   "very strongly more important than")
    context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"),
                   "strongly more important than")
    context.prefer(COMPLETENESS("street"), COMPLETENESS("postcode"),
                   "moderately more important than")
    return context


def report(stage) -> None:
    quality = stage.quality
    print(f"[{stage.phase}] mapping={stage.selected_mapping.mapping_id} "
          f"rows={stage.row_count} steps={stage.steps_executed}")
    print(f"    completeness={quality.completeness:.3f}  accuracy={quality.accuracy:.3f}  "
          f"consistency={quality.consistency:.3f}  relevance={quality.relevance:.3f}  "
          f"overall={quality.overall():.4f}")


def main() -> None:
    scenario = generate_scenario(ScenarioConfig(properties=500, postcodes=100, seed=7))
    print(f"Sources: rightmove={len(scenario.rightmove)} rows, "
          f"onthemarket={len(scenario.onthemarket)} rows, "
          f"deprivation={len(scenario.deprivation)} rows")
    print(f"Data context: address reference={len(scenario.address_reference)} rows, "
          f"master data={len(scenario.master)} rows")
    print()

    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)

    # Step 1: automatic bootstrapping.
    report(wrangler.run("bootstrap", ground_truth=scenario.ground_truth))

    # Step 2: data context.
    wrangler.add_reference_data(scenario.address_reference)
    wrangler.add_master_data(scenario.master)
    report(wrangler.run("data_context", ground_truth=scenario.ground_truth))

    # Step 3: feedback (simulated: the data scientist flags wrong values).
    added = wrangler.simulate_feedback(scenario.ground_truth, budget=120, seed=1)
    print(f"    (user annotated {added} result cells)")
    report(wrangler.run("feedback", ground_truth=scenario.ground_truth))

    # Step 4: user context.
    context = paper_user_context()
    wrangler.set_user_context(context)
    final = wrangler.run("user_context", ground_truth=scenario.ground_truth)
    report(final)
    weights = context.dimension_weights()
    print(f"    user-weighted overall score: {final.quality.overall(weights):.4f}")

    print()
    print("Sample of the final result:")
    print(final.table.head(8).pretty())
    print()
    print("Transducer executions:")
    for name, count in sorted(wrangler.trace.execution_counts().items()):
        print(f"  {name:28s} {count}")


if __name__ == "__main__":
    main()
