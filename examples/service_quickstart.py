"""Quickstart for wrangling-as-a-service: one session, three distances.

The same typed requests drive a session in-process, through the background
job queue, and over HTTP — this example walks all three against a small
synthetic product catalog, then checkpoints the session and proves the
restore is bit-identical.

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.scenarios.synth import SynthConfig
from repro.service import (
    BackgroundService,
    EvaluateRequest,
    ExplainRequest,
    RunRequest,
    ServiceClient,
    SessionStore,
    SimulateRequest,
    WranglingSession,
)


def in_process(checkpoint_dir: Path) -> str:
    """A session is a Wrangler plus conversation state; handle() dispatches."""
    print("=== 1. In-process session ===")
    session = WranglingSession.from_scenario(
        SynthConfig(family="product_catalog", entities=300, seed=4),
        name="quickstart",
    )
    metrics = session.handle(RunRequest(phase="bootstrap"))
    print(f"bootstrap: {metrics.rows} rows, overall quality {metrics.overall:.3f}")

    # One simulated feedback round (annotations from ground truth).
    metrics = session.handle(SimulateRequest(budget=15))
    print(f"feedback:  {metrics.rows} rows, overall quality {metrics.overall:.3f}")

    explained = session.handle(ExplainRequest(row=0))
    print(explained.text.splitlines()[0])

    saved = session.checkpoint(str(checkpoint_dir / "quickstart.ckpt"))
    print(f"checkpointed {saved['bytes']} bytes ({saved['sha256'][:12]}...)")

    restored = WranglingSession.restore(saved["path"])
    assert restored.fingerprint() == session.fingerprint()
    print("restore is bit-identical (fingerprints match)\n")
    return saved["path"]


def queued(checkpoint_path: str) -> None:
    """The async job queue: submit, poll, cancel — sessions stay warm."""
    print("=== 2. Background job queue ===")
    store = SessionStore()
    session = WranglingSession.restore(checkpoint_path)
    store.add(session)
    with BackgroundService(store, workers=2) as service:
        job = service.submit(session.session_id, EvaluateRequest())
        record = service.wait(job.job_id)
        print(f"job {record.job_id} -> {record.status}, "
              f"overall quality {record.result['overall']:.3f}\n")


def over_http() -> None:
    """The HTTP front end (stdlib asyncio server + urllib client)."""
    import asyncio
    import threading

    from repro.service import WranglingServer

    print("=== 3. Over HTTP ===")
    server = WranglingServer(SessionStore(), port=0)
    ready = threading.Event()
    shutdown: list = []

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        shutdown.extend([loop, stop])
        await server.start()
        ready.set()
        await stop.wait()
        await server.stop()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    ready.wait()
    host, port = server.address

    client = ServiceClient(f"http://{host}:{port}")
    info = client.create_session({"entities": 200, "seed": 9}, name="http-demo")
    sid = info["session_id"]
    metrics = client.perform(sid, RunRequest(phase="bootstrap"))
    print(f"{client.health()} -> session {sid}")
    print(f"bootstrap over the wire: {metrics['rows']} rows")
    metrics = client.perform(sid, SimulateRequest(budget=10))
    print(f"feedback over the wire:  overall quality {metrics['overall']:.3f}")

    loop, stop = shutdown
    loop.call_soon_threadsafe(stop.set)
    thread.join(timeout=10)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = in_process(Path(tmp))
        queued(path)
    over_http()


if __name__ == "__main__":
    main()
